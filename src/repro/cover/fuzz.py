"""Seeded coverage-driven fuzz loop over generator knobs.

Each attempt picks one still-uncovered *structural* target (a bin
with the outcome axis collapsed — outcomes cannot be dialled in,
they fall out of the mapping policies), derives the
:class:`~repro.gen.topology.Shape` knobs that steer ``random-dag``
generation toward it, and pushes the resulting token through the
screened explorer so every placement outcome (ok / repaired /
rejected / screened) stays reachable.  The loop stops at the attempt
budget or after a saturation window of attempts with no new bin.

:func:`random_campaign` is the untargeted twin — same budget, same
evaluation path, but families drawn blindly and no shape knobs — and
exists so the regression suite can pin the fuzzer's coverage
advantage (the acceptance bar is >= 25 % more bins at equal budget).

Determinism: one ``random.Random`` seeded from
``derive_seed(COVER_SCHEMA, mode, seed)`` drives every draw in
declaration order; tokens, bin keys and attempt logs are plain
strings, so a campaign is a pure function of its parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .. import obs
from ..gen.explorer import screen_policies
from ..gen.generator import app_from_token, app_token, derive_seed
from ..gen.topology import FAMILY_ORDER, Shape
from .model import COVER_SCHEMA, DIMENSIONS, CoverageMap

#: Built-in campaign defaults (the `python -m repro.eval cover`
#: artifact and the CI determinism gate both use these).
COVER_SEED = 7
COVER_BUDGET = 96
COVER_SATURATION = 24
COVER_DURATION_S = 2.0
COVER_POLICIES: tuple[str, ...] = ("paper", "balanced")
COVER_CORES = 8

#: Candidates promoted to exact simulation per attempt (the rest
#: come back analytically "screened" — itself a coverage outcome).
COVER_TOP_K = 1

#: Index of the outcome axis inside a bin-key label tuple.
_OUTCOME_AXIS = next(index for index, dimension in enumerate(DIMENSIONS)
                     if dimension.name == "outcome")


@dataclass(frozen=True)
class FuzzAttempt:
    """One fuzz-loop iteration.

    Attributes:
        token: the generated app token evaluated.
        target: structural target key (``family/depth/fan_in/
            sharing/replicas``); empty in random mode.
        new_bins: in-space bins first covered by this attempt.
    """

    token: str
    target: str
    new_bins: int


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one campaign (the ``repro-cover/1`` substrate)."""

    mode: str
    seed: int
    budget: int
    saturation: int
    policies: tuple[str, ...]
    num_cores: int
    duration_s: float
    attempts: tuple[FuzzAttempt, ...]
    coverage: CoverageMap
    status_counts: dict[str, int]
    saturated: bool


def _structural_targets(uncovered: list[str]) -> list[str]:
    """Uncovered bins with the outcome axis collapsed, deduplicated.

    Order follows the uncovered list (declaration order), so the
    target pool is deterministic.
    """
    targets: list[str] = []
    seen: set[str] = set()
    for key in uncovered:
        labels = key.split("/")
        structural = "/".join(
            labels[:_OUTCOME_AXIS] + labels[_OUTCOME_AXIS + 1:])
        if structural not in seen:
            seen.add(structural)
            targets.append(structural)
    return targets


def _shape_for(rng: random.Random, target: str,
               force_triggered: bool) -> tuple[str, Shape | None]:
    """Family + shape knobs steering generation toward a target.

    Only ``random-dag`` accepts knobs; other families return a bare
    identity and rely on the family's own draw ranges.  Knob values
    are drawn *within* the target band (every draw on the campaign
    stream, lazily, in axis order) so distinct attempts at the same
    bin explore different concrete shapes.
    """
    family, depth_label, fanin_label, sharing, replicas_label = \
        target.split("/")
    if family != "random-dag":
        return family, None
    if depth_label == "d5-8":
        depth = rng.randint(5, 8)
    elif depth_label == "d9+":
        depth = rng.randint(9, 12)
    else:
        depth = rng.randint(2, 4)
    if fanin_label == "f5+":
        fan_in = rng.randint(5, 8)
    elif fanin_label == "f2-4":
        fan_in = rng.randint(2, 4)
    else:
        fan_in = None
    if replicas_label == "r5+":
        replicas = rng.randint(5, 8)
    elif replicas_label == "r2-4":
        replicas = rng.randint(2, 4)
    else:
        replicas = 1
    return family, Shape(
        depth=depth,
        fan_in=fan_in,
        diamond=sharing == "shared",
        triggered=force_triggered or rng.random() < 0.25,
        replicas=replicas,
    )


def fuzz_campaign(seed: int = COVER_SEED, budget: int = COVER_BUDGET,
                  saturation: int = COVER_SATURATION,
                  policies: tuple[str, ...] = COVER_POLICIES,
                  num_cores: int = COVER_CORES,
                  duration_s: float = COVER_DURATION_S,
                  targeted: bool = True) -> FuzzReport:
    """Run one coverage campaign.

    Args:
        seed: campaign seed (also the generated apps' suite seed).
        budget: maximum attempts (generated apps).
        saturation: stop after this many consecutive attempts with
            no newly covered bin.
        policies: mapping policies screened per app.
        num_cores: provisioned platform width.
        duration_s: simulated seconds per exact point.
        targeted: steer toward uncovered bins (False: the blind
            baseline of :func:`random_campaign`).

    Raises:
        ValueError: non-positive budget/saturation or unknown
            policy.
    """
    if budget < 1:
        raise ValueError(f"fuzz budget must be >= 1, got {budget}")
    if saturation < 1:
        raise ValueError(
            f"saturation window must be >= 1, got {saturation}")
    mode = "fuzz" if targeted else "random"
    rng = random.Random(derive_seed(COVER_SCHEMA, mode, seed))
    coverage = CoverageMap()
    attempts: list[FuzzAttempt] = []
    status_counts: dict[str, int] = {}
    stale = 0
    with obs.span("cover.campaign"):
        for index in range(budget):
            if stale >= saturation:
                break
            target = ""
            family, shape = "", None
            if targeted:
                uncovered = coverage.uncovered()
                if uncovered:
                    targets = _structural_targets(uncovered)
                    target = targets[rng.randrange(len(targets))]
                    adversarial = coverage.adversarial_hits()
                    family, shape = _shape_for(
                        rng, target,
                        force_triggered=adversarial[
                            "triggered-subgraph"] == 0)
            if not family:
                family = FAMILY_ORDER[rng.randrange(len(FAMILY_ORDER))]
            token = app_token(family, seed, index, shape=shape)
            app = app_from_token(token)
            records = screen_policies(
                app, policies, num_cores=num_cores,
                duration_s=duration_s, top_k=COVER_TOP_K,
                token=token, family=family)
            new_bins = 0
            for record in records:
                status_counts[record.status] = \
                    status_counts.get(record.status, 0) + 1
                _, fresh = coverage.record(app, record, token=token)
                new_bins += fresh
            obs.add("cover.attempts")
            if new_bins:
                obs.add("cover.new_bins", new_bins)
            attempts.append(FuzzAttempt(
                token=token, target=target, new_bins=new_bins))
            stale = 0 if new_bins else stale + 1
    obs.gauge("cover.covered_bins", len(coverage.covered()))
    return FuzzReport(
        mode=mode,
        seed=seed,
        budget=budget,
        saturation=saturation,
        policies=tuple(policies),
        num_cores=num_cores,
        duration_s=duration_s,
        attempts=tuple(attempts),
        coverage=coverage,
        status_counts=status_counts,
        saturated=stale >= saturation,
    )


def random_campaign(seed: int = COVER_SEED,
                    budget: int = COVER_BUDGET,
                    saturation: int = COVER_SATURATION,
                    policies: tuple[str, ...] = COVER_POLICIES,
                    num_cores: int = COVER_CORES,
                    duration_s: float = COVER_DURATION_S) -> FuzzReport:
    """The untargeted baseline: blind family draws, no shape knobs."""
    return fuzz_campaign(seed=seed, budget=budget,
                         saturation=saturation, policies=policies,
                         num_cores=num_cores, duration_s=duration_s,
                         targeted=False)
