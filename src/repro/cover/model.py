"""The coverage model: dimensions, bins, and the CoverageMap.

A *bin* is one point of the structural-x-outcome cross product; its
key is the dimension labels joined with ``/`` in declaration order
(``"random-dag/d9+/f1/private/rejected/r2-4"``).  The declared space
is pruned per family to the combinations the generator can actually
produce — ``independent`` apps have no channels, so every
``independent/... /f1/...`` bin would be dead weight — and the pruning
itself is data (:data:`FAMILY_SPACE`), so tests can assert it.  Hits
that land *outside* the declared space are not dropped: they are
tracked separately as ``unexpected`` bins, turning any drift between
the generator and this model into a visible artifact diff instead of
a silent gap.

Separate from the cross product, four named *adversarial
coverpoints* capture the shapes the fuzz loop exists to reach:

* ``deep-chain`` — more than 8 stages;
* ``wide-fan-in`` — more than 4 producers on one channel;
* ``diamond-shared`` — a multi-producer join plus code sections
  shared across phases;
* ``triggered-subgraph`` — two or more pathological-beat phases.

All ordering is declaration order and every key is a plain string,
so the model contributes nothing hash-order-dependent to the
``repro-cover/1`` artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..apps.phases import AppSpec, Trigger
from ..gen.explorer import (
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_REPAIRED,
    STATUS_SCREENED,
    ExplorationRecord,
)
from ..gen.topology import FAMILY_ORDER

#: Artifact schema tag (also mixed into the fuzz seed derivation).
COVER_SCHEMA = "repro-cover/1"


@dataclass(frozen=True)
class Band:
    """One labelled integer band of a dimension."""

    label: str
    low: int
    high: int | None = None  # inclusive; None = open-ended

    def contains(self, value: int) -> bool:
        return value >= self.low and (
            self.high is None or value <= self.high)


#: Stage-depth bands (stage count == phase count).
DEPTH_BANDS: tuple[Band, ...] = (
    Band("d1", 1, 1),
    Band("d2-4", 2, 4),
    Band("d5-8", 5, 8),
    Band("d9+", 9),
)

#: Max-fan-in bands (most producers on any single channel).
FANIN_BANDS: tuple[Band, ...] = (
    Band("f0", 0, 0),
    Band("f1", 1, 1),
    Band("f2-4", 2, 4),
    Band("f5+", 5),
)

#: Replica-group-size bands (widest lock-step group).
REPLICA_BANDS: tuple[Band, ...] = (
    Band("r1", 1, 1),
    Band("r2-4", 2, 4),
    Band("r5+", 5),
)

#: Section-sharing labels (any section name in two or more phases).
SHARING_LABELS: tuple[str, ...] = ("private", "shared")

#: Mapping-policy outcome labels (``ExplorationRecord.status``).
OUTCOME_LABELS: tuple[str, ...] = (
    STATUS_OK, STATUS_REPAIRED, STATUS_REJECTED, STATUS_SCREENED,
)


@dataclass(frozen=True)
class Dimension:
    """One axis of the coverage space, with its label vocabulary."""

    name: str
    labels: tuple[str, ...]


def _labels(bands: tuple[Band, ...]) -> tuple[str, ...]:
    return tuple(band.label for band in bands)


#: The coverage dimensions, in bin-key order.
DIMENSIONS: tuple[Dimension, ...] = (
    Dimension("family", FAMILY_ORDER),
    Dimension("depth", _labels(DEPTH_BANDS)),
    Dimension("fan_in", _labels(FANIN_BANDS)),
    Dimension("sharing", SHARING_LABELS),
    Dimension("outcome", OUTCOME_LABELS),
    Dimension("replicas", _labels(REPLICA_BANDS)),
)

#: Reachable structural labels per family.  Derived from the draw
#: ranges in :mod:`repro.gen.topology`: e.g. a pipeline is 2-4
#: stages with a 1-3-replica head and single-producer channels, so
#: everything else is pruned.  Only ``random-dag`` (the adversarial
#: family, with shape knobs) spans multiple bands per axis.
FAMILY_SPACE: dict[str, dict[str, tuple[str, ...]]] = {
    "pipeline": {
        "depth": ("d2-4",),
        "fan_in": ("f1",),
        "sharing": ("private",),
        "replicas": ("r1", "r2-4"),
    },
    "fork-join": {
        "depth": ("d2-4",),
        "fan_in": ("f1",),
        "sharing": ("private",),
        "replicas": ("r2-4",),
    },
    "fan-in": {
        "depth": ("d2-4",),
        "fan_in": ("f2-4",),
        "sharing": ("private",),
        "replicas": ("r1",),
    },
    "independent": {
        "depth": ("d1",),
        "fan_in": ("f0",),
        "sharing": ("private",),
        "replicas": ("r2-4",),
    },
    "random-dag": {
        "depth": ("d2-4", "d5-8", "d9+"),
        "fan_in": ("f1", "f2-4", "f5+"),
        "sharing": ("private", "shared"),
        "replicas": ("r1", "r2-4", "r5+"),
    },
}

#: Structurally impossible (family, depth, fan_in) combinations a
#: naive per-axis product would include: a 5-producer fuse needs the
#: producers plus a head and the fuse itself, so wide fan-in cannot
#: fit in a 2-4-stage app.
EXCLUDED_COMBOS: frozenset[tuple[str, str, str]] = frozenset({
    ("random-dag", "d2-4", "f5+"),
})


def band_label(bands: tuple[Band, ...], value: int) -> str:
    """The label of the band containing ``value``.

    Raises:
        ValueError: value below every band (negative counts).
    """
    for band in bands:
        if band.contains(value):
            return band.label
    raise ValueError(f"value {value!r} outside every band "
                     f"{[band.label for band in bands]}")


def app_depth(app: AppSpec) -> int:
    """Stage depth: the phase count."""
    return len(app.phases)


def app_max_fan_in(app: AppSpec) -> int:
    """Most producers on any single channel (0: no channels)."""
    return max((len(channel.producers) for channel in app.channels),
               default=0)


def app_max_replicas(app: AppSpec) -> int:
    """Widest lock-step replica group."""
    return max(phase.replicas for phase in app.phases)


def app_shares_sections(app: AppSpec) -> bool:
    """True when any code section name appears in >= 2 phases."""
    seen: set[str] = set()
    for phase in app.phases:
        names = {section.name for section in phase.sections}
        if names & seen:
            return True
        seen |= names
    return False


def app_triggered_phases(app: AppSpec) -> int:
    """Number of pathological-beat (ON_ABNORMAL) phases."""
    return sum(1 for phase in app.phases
               if phase.trigger is Trigger.ON_ABNORMAL)


def classify(app: AppSpec,
             record: ExplorationRecord) -> tuple[str, ...]:
    """The dimension labels of one (app, record) pair.

    Structural labels come from the *generated* (pre-repair)
    application; the outcome label is the record's placement status.
    """
    return (
        record.family or "unknown",
        band_label(DEPTH_BANDS, app_depth(app)),
        band_label(FANIN_BANDS, app_max_fan_in(app)),
        SHARING_LABELS[1] if app_shares_sections(app)
        else SHARING_LABELS[0],
        record.status,
        band_label(REPLICA_BANDS, app_max_replicas(app)),
    )


def bin_key(labels: tuple[str, ...]) -> str:
    """Deterministic bin key: labels joined in dimension order."""
    return "/".join(labels)


def parse_bin(key: str) -> tuple[str, ...]:
    """Invert :func:`bin_key`, validating every label.

    Raises:
        ValueError: wrong arity or a label outside its dimension's
            vocabulary (the message names the dimension).
    """
    labels = tuple(key.split("/"))
    if len(labels) != len(DIMENSIONS):
        raise ValueError(
            f"malformed bin key {key!r}; expected "
            f"{len(DIMENSIONS)} '/'-separated labels")
    for label, dimension in zip(labels, DIMENSIONS):
        if label not in dimension.labels:
            raise ValueError(
                f"bin key {key!r}: {label!r} is not a "
                f"{dimension.name} label {list(dimension.labels)}")
    return labels


def all_bins() -> tuple[str, ...]:
    """Every declared bin key, in deterministic declaration order."""
    keys: list[str] = []
    for family in FAMILY_ORDER:
        space = FAMILY_SPACE[family]
        for depth in space["depth"]:
            for fan_in in space["fan_in"]:
                if (family, depth, fan_in) in EXCLUDED_COMBOS:
                    continue
                for sharing in space["sharing"]:
                    for outcome in OUTCOME_LABELS:
                        for replicas in space["replicas"]:
                            keys.append(bin_key((
                                family, depth, fan_in, sharing,
                                outcome, replicas)))
    return tuple(keys)


def _deep_chain(app: AppSpec) -> bool:
    return app_depth(app) > 8


def _wide_fan_in(app: AppSpec) -> bool:
    return app_max_fan_in(app) > 4


def _diamond_shared(app: AppSpec) -> bool:
    return app_shares_sections(app) and any(
        len(channel.producers) >= 2 for channel in app.channels)


def _triggered_subgraph(app: AppSpec) -> bool:
    return app_triggered_phases(app) >= 2


#: Named adversarial coverpoints, in report order.
ADVERSARIAL_POINTS: dict[str, Callable[[AppSpec], bool]] = {
    "deep-chain": _deep_chain,
    "wide-fan-in": _wide_fan_in,
    "diamond-shared": _diamond_shared,
    "triggered-subgraph": _triggered_subgraph,
}


@dataclass
class CoverageMap:
    """Hit counts over the declared bins plus the coverpoints.

    Recording is append-only and order-deterministic: hit counts are
    integers, first-hitting tokens are whatever token was recorded
    first, and every accessor returns sorted or declaration-ordered
    containers.
    """

    _space: tuple[str, ...] = field(default_factory=all_bins)
    _hits: dict[str, int] = field(default_factory=dict)
    _first: dict[str, str] = field(default_factory=dict)
    _adversarial: dict[str, int] = field(default_factory=lambda: {
        name: 0 for name in ADVERSARIAL_POINTS})
    _adversarial_first: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._space_set = frozenset(self._space)

    def record(self, app: AppSpec, record: ExplorationRecord,
               token: str = "") -> tuple[str, bool]:
        """Classify one pair; returns ``(bin key, newly covered)``.

        ``newly covered`` is True only for the first hit of an
        *in-space* bin — unexpected bins never count as coverage
        progress (they are a model gap, not a fuzzing win).
        """
        token = token or record.token
        key = bin_key(classify(app, record))
        fresh = key not in self._hits
        self._hits[key] = self._hits.get(key, 0) + 1
        if fresh:
            self._first[key] = token
        for name, predicate in ADVERSARIAL_POINTS.items():
            if predicate(app):
                if self._adversarial[name] == 0:
                    self._adversarial_first[name] = token
                self._adversarial[name] += 1
        return key, fresh and key in self._space_set

    @property
    def space(self) -> tuple[str, ...]:
        """Every declared bin key."""
        return self._space

    def covered(self) -> list[str]:
        """Sorted in-space bins hit at least once."""
        return sorted(key for key in self._hits
                      if key in self._space_set)

    def uncovered(self) -> list[str]:
        """Declared bins never hit, in declaration order."""
        return [key for key in self._space if key not in self._hits]

    def unexpected(self) -> list[str]:
        """Sorted hit bins outside the declared space."""
        return sorted(key for key in self._hits
                      if key not in self._space_set)

    def hits(self, key: str) -> int:
        return self._hits.get(key, 0)

    def first_token(self, key: str) -> str:
        return self._first.get(key, "")

    def adversarial_hits(self) -> dict[str, int]:
        """Coverpoint hit counts, in declaration order."""
        return dict(self._adversarial)

    def adversarial_first(self, name: str) -> str:
        return self._adversarial_first.get(name, "")
