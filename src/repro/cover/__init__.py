"""Declarative coverage over the generated-workload space.

The generator (:mod:`repro.gen`) can draw an unbounded population of
applications, but blind sampling says nothing about what the
population never exercised — the deep chains, wide fan-ins and
section-sharing diamonds where the paper's mapping policies and sync
methodology actually diverge.  This package closes that loop the way
hardware-verification coverage does:

* :mod:`repro.cover.model` declares the coverage *bins* — the cross
  product of topology family x stage-depth band x max-fan-in band x
  section-sharing x mapping-policy outcome x replica-band, pruned to
  the structurally reachable per-family combinations — plus four
  named adversarial coverpoints (deep-chain, wide-fan-in,
  diamond-shared, triggered-subgraph).  A :class:`CoverageMap`
  classifies every ``(AppSpec, ExplorationRecord)`` pair into a
  deterministic bin key and tracks hit counts, first-hitting tokens
  and the uncovered remainder.
* :mod:`repro.cover.fuzz` is the seeded fuzz loop: it repeatedly
  picks an uncovered bin, derives adversarial
  :class:`~repro.gen.topology.Shape` knobs that steer ``random-dag``
  generation toward it, and evaluates the resulting token through
  the screened explorer until the budget or a saturation window is
  exhausted.  An untargeted twin (:func:`random_campaign`) provides
  the baseline the regression tests compare against.

Everything is a pure function of the campaign parameters — bin keys
are plain strings, ordering is declaration order, and every random
draw flows through one SHA-256-derived stream — so the
``repro-cover/1`` artifact is byte-identical across processes and
``PYTHONHASHSEED`` values.
"""

from .fuzz import (
    COVER_BUDGET,
    COVER_DURATION_S,
    COVER_POLICIES,
    COVER_SATURATION,
    COVER_SEED,
    FuzzAttempt,
    FuzzReport,
    fuzz_campaign,
    random_campaign,
)
from .model import (
    ADVERSARIAL_POINTS,
    COVER_SCHEMA,
    DIMENSIONS,
    CoverageMap,
    all_bins,
    bin_key,
    classify,
    parse_bin,
)

__all__ = [
    "ADVERSARIAL_POINTS",
    "COVER_BUDGET",
    "COVER_DURATION_S",
    "COVER_POLICIES",
    "COVER_SATURATION",
    "COVER_SCHEMA",
    "COVER_SEED",
    "CoverageMap",
    "DIMENSIONS",
    "FuzzAttempt",
    "FuzzReport",
    "all_bins",
    "bin_key",
    "classify",
    "fuzz_campaign",
    "parse_bin",
    "random_campaign",
]
