"""Application phases: the unit of the paper's partitioning step.

Sec. III-B, step 1: "applications are divided into different phases,
each executing on one core.  To exploit lock-step execution,
application phases operating in parallel on different data streams
should be assigned to different cores."

A :class:`PhaseSpec` describes one phase's workload intensity (cycles
and data-memory traffic per input sample), its static code footprint
(used by the mapping step to place sections into IM banks and by the
Table I *code overhead* row), its synchronization behaviour (runtime
sync-instruction rate, lock-step alignment) and its activation trigger
(streaming vs. activated per abnormal beat, as in RP-CLASS's
delineation chain).

Workload calibration.  The per-sample cycle counts are calibrated so
the *single-core* required clocks reproduce Table I's "Min. Clock" row
(2.3 / 3.4 / 3.3 MHz at 250 Hz); the split across phases follows the
relative operation counts of the actual DSP implementations in
:mod:`repro.dsp` (see ``ops_per_sample``).  Everything downstream
(multi-core clocks, duty cycles, power, Fig. 6, Fig. 7) is computed,
not fitted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Trigger(enum.Enum):
    """When a phase consumes cycles."""

    STREAMING = "streaming"      # active on every input sample
    ON_ABNORMAL = "on_abnormal"  # activated per pathological beat


@dataclass(frozen=True)
class SectionSpec:
    """One code section of a phase (a linker placement unit).

    Attributes:
        name: section name (unique within the application).
        words: code size in 24-bit instruction words.
    """

    name: str
    words: int


@dataclass(frozen=True)
class PhaseSpec:
    """One application phase (mapped to one core per replica).

    Attributes:
        name: phase name.
        cycles_per_sample: execution cycles per input sample while
            active (per replica).
        dm_access_rate: data-memory accesses per executed cycle.
        sections: code sections of this phase.
        sync_code_words: synchronization instructions the insertion
            step adds to this phase's code on the multi-core mapping.
        sync_ops_per_sample: synchronization instructions *executed*
            per sample per replica on the multi-core mapping.
        replicas: parallel instances (e.g. one per ECG lead); replicas
            run the same code and form a lock-step group.
        lockstep_alignment: fraction of a replica group's co-active
            cycles spent in lock-step (drives instruction broadcast);
            data-dependent branches lower it, the paper's SINC/SDEC
            recovery keeps it well above zero.
        shared_read_fraction: fraction of data reads that target shared
            constants (broadcast candidates when in lock-step).
        trigger: activation model.
        dm_words: data-memory footprint per replica, in 16-bit words.
    """

    name: str
    cycles_per_sample: float
    dm_access_rate: float
    sections: tuple[SectionSpec, ...]
    sync_code_words: int = 0
    sync_ops_per_sample: float = 0.0
    replicas: int = 1
    lockstep_alignment: float = 0.0
    shared_read_fraction: float = 0.0
    trigger: Trigger = Trigger.STREAMING
    dm_words: int = 0

    @property
    def code_words(self) -> int:
        """Total code size across sections."""
        return sum(section.words for section in self.sections)

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.cycles_per_sample < 0:
            raise ValueError(f"{self.name}: negative cycle cost")
        if not 0 <= self.lockstep_alignment <= 1:
            raise ValueError(f"{self.name}: alignment outside [0, 1]")
        if not 0 <= self.shared_read_fraction <= 1:
            raise ValueError(f"{self.name}: shared fraction outside [0, 1]")
        if self.replicas < 1:
            raise ValueError(f"{self.name}: needs at least one replica")


@dataclass(frozen=True)
class ChannelSpec:
    """A producer-consumer relationship between phases (Sec. III-B).

    Producers issue ``SINC``/``SDEC`` around each datum; the consumer
    registers with ``SNOP`` and sleeps.  One synchronization point is
    allocated per channel by the mapping step.

    Attributes:
        producers: producing phase names (replicas all produce).
        consumer: consuming phase name.
        handoffs_per_sample: how many producer-consumer exchanges
            happen per input sample (1.0 for sample-rate streaming,
            less for beat-rate hand-offs).
    """

    producers: tuple[str, ...]
    consumer: str
    handoffs_per_sample: float = 1.0


@dataclass
class AppSpec:
    """A benchmark application: phases + channels + metadata.

    Attributes:
        name: short benchmark name (e.g. ``3L-MF``).
        fs: input sampling rate in Hz.
        phases: all phases, in pipeline order.
        channels: producer-consumer relationships.
        runtime_words: size of the shared runtime/boot code section.
        beat_span_samples: samples of work one triggered activation
            processes (one beat window).
        description: one-line description for reports.
    """

    name: str
    fs: float
    phases: list[PhaseSpec]
    channels: list[ChannelSpec] = field(default_factory=list)
    runtime_words: int = 300
    beat_span_samples: int = 208
    description: str = ""

    def phase(self, name: str) -> PhaseSpec:
        """Look up a phase by name."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r} in {self.name}")

    def validate(self) -> None:
        """Check phase parameters and channel references."""
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate phase names")
        for phase in self.phases:
            phase.validate()
        for channel in self.channels:
            for producer in channel.producers:
                self.phase(producer)
            self.phase(channel.consumer)

    @property
    def streaming_cycles_per_sample(self) -> float:
        """Always-on work per input sample (all replicas)."""
        return sum(phase.cycles_per_sample * phase.replicas
                   for phase in self.phases
                   if phase.trigger is Trigger.STREAMING)

    @property
    def triggered_cycles_per_beat(self) -> float:
        """Work one abnormal beat triggers (all replicas)."""
        per_sample = sum(phase.cycles_per_sample * phase.replicas
                         for phase in self.phases
                         if phase.trigger is Trigger.ON_ABNORMAL)
        return per_sample * self.beat_span_samples
