"""Application layer (system S18): phase graphs + mapping methodology."""

from .benchmarks import (
    FS,
    MfOutput,
    MmdOutput,
    RpClassApp,
    RpClassOutput,
    rp_class,
    run_rp_class,
    run_three_lead_mf,
    run_three_lead_mmd,
    three_lead_mf,
    three_lead_mmd,
)
from .mapping import (
    CoreAssignment,
    MappingError,
    MappingPlan,
    map_multicore,
    map_singlecore,
)
from .phases import AppSpec, ChannelSpec, PhaseSpec, SectionSpec, Trigger

__all__ = [
    "AppSpec",
    "ChannelSpec",
    "CoreAssignment",
    "FS",
    "MappingError",
    "MappingPlan",
    "MfOutput",
    "MmdOutput",
    "PhaseSpec",
    "RpClassApp",
    "RpClassOutput",
    "SectionSpec",
    "Trigger",
    "map_multicore",
    "map_singlecore",
    "rp_class",
    "run_rp_class",
    "run_three_lead_mf",
    "run_three_lead_mmd",
    "three_lead_mf",
    "three_lead_mmd",
]
