"""Application layer (system S18): phase graphs + mapping methodology."""

from .benchmarks import (
    FS,
    MfOutput,
    MmdOutput,
    RpClassApp,
    RpClassOutput,
    rp_class,
    run_rp_class,
    run_three_lead_mf,
    run_three_lead_mmd,
    three_lead_mf,
    three_lead_mmd,
)
from .mapping import (
    CoreAssignment,
    MappingError,
    MappingPlan,
    distinct_sections,
    dm_footprint,
    map_multicore,
    map_singlecore,
    sync_points,
)
from .phases import AppSpec, ChannelSpec, PhaseSpec, SectionSpec, Trigger

__all__ = [
    "AppSpec",
    "ChannelSpec",
    "CoreAssignment",
    "FS",
    "MappingError",
    "MappingPlan",
    "MfOutput",
    "MmdOutput",
    "PhaseSpec",
    "RpClassApp",
    "RpClassOutput",
    "SectionSpec",
    "Trigger",
    "distinct_sections",
    "dm_footprint",
    "map_multicore",
    "map_singlecore",
    "rp_class",
    "run_rp_class",
    "run_three_lead_mf",
    "run_three_lead_mmd",
    "sync_points",
    "three_lead_mf",
    "three_lead_mmd",
]
