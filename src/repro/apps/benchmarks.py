"""The paper's three benchmark applications (Sec. IV-D, Fig. 5).

* **3L-MF** — three-lead morphological filtering: three replicas of the
  conditioning filter, no producer-consumer channels; synchronization
  is only used to recover lock-step across data-dependent branches.
* **3L-MMD** — three-lead delineation: the three filter replicas feed
  an aggregator, which feeds the MMD delineator (producer-consumer
  *and* lock-step synchronization); mapped on five cores.
* **RP-CLASS** — single-lead conditioning + random-projection beat
  classification, plus a three-lead delineation chain activated only
  for pathological beats; mapped on six cores.

Workload constants are calibrated as described in
:mod:`repro.apps.phases`: the three single-core "Min. Clock" values of
Table I anchor the totals (2.3 / 3.4 / 3.3 MHz at 250 Hz); code sizes
are sized so the builder's first-fit packing reproduces the "Active IM
banks" rows; per-phase sync behaviour is set from the cycle-level
kernel characterisation (see ``repro.kernels``).

Each builder also provides a *functional* runner that executes the real
DSP of :mod:`repro.dsp` over a record, so examples and tests can check
application outputs, not just performance numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.beatdet import detect_r_peaks
from ..dsp.mmd import DelineatedBeat, MmdDelineator, combine_leads
from ..dsp.morphology import MorphologicalFilter
from ..dsp.rp import RandomProjectionClassifier
from ..signals.records import BeatLabel, EcgRecord
from .phases import AppSpec, ChannelSpec, PhaseSpec, SectionSpec, Trigger

#: Input sampling rate of all benchmarks (Hz).
FS = 250.0

# Calibrated per-phase cycle budgets (cycles per sample at 250 Hz).
#   3 * MF                    = 9_200  -> 2.3 MHz (3L-MF SC)
#   3 * MF + COMBINE + DELIN  = 13_600 -> 3.4 MHz (3L-MMD SC)
#   MF + CLASSIFY (2 halves)  = 11_000;
#   + 20 % of the chain       -> ~3.3 MHz (RP-CLASS SC at 20 %)
MF_CYCLES = 3_067.0
COMBINE_CYCLES = 1_400.0
DELINEATE_CYCLES = 3_000.0
CLASSIFY_HALF_CYCLES = 3_966.0


def _mf_phase(replicas: int, trigger: Trigger = Trigger.STREAMING,
              alignment: float = 0.605, name: str = "filter",
              shared_reads: float = 0.093, sync_code: int = 92,
              sync_ops: float = 50.0) -> PhaseSpec:
    """The conditioning-filter phase (shared code across replicas).

    The synchronization knobs vary slightly per benchmark: the filter
    is instrumented with more lock-step recovery sites when it is the
    whole application (3L-MF) than when producer-consumer hand-offs
    already act as re-alignment points (3L-MMD / RP-CLASS); the
    calibrated values land on the paper's per-benchmark overhead rows.
    """
    return PhaseSpec(
        name=name,
        cycles_per_sample=MF_CYCLES,
        dm_access_rate=0.25,
        sections=(SectionSpec("mf", 3200),),
        sync_code_words=sync_code,
        sync_ops_per_sample=sync_ops,
        replicas=replicas,
        lockstep_alignment=alignment,
        shared_read_fraction=shared_reads,
        trigger=trigger,
        dm_words=1700,
    )


def three_lead_mf() -> AppSpec:
    """3L-MF: three-lead morphological filtering (Fig. 5-a)."""
    app = AppSpec(
        name="3L-MF",
        fs=FS,
        phases=[_mf_phase(replicas=3)],
        channels=[],
        description="three-lead morphological filtering [21]",
    )
    app.validate()
    return app


def three_lead_mmd() -> AppSpec:
    """3L-MMD: three-lead filtering + MMD delineation (Fig. 5-b)."""
    filter_phase = _mf_phase(replicas=3, alignment=0.52,
                             shared_reads=0.126, sync_code=78,
                             sync_ops=41.0)
    combine = PhaseSpec(
        name="combine",
        cycles_per_sample=COMBINE_CYCLES,
        dm_access_rate=0.30,
        sections=(SectionSpec("combine", 1900),),
        sync_code_words=6,
        sync_ops_per_sample=4.0,
        dm_words=400,
    )
    delineate = PhaseSpec(
        name="delineate",
        cycles_per_sample=DELINEATE_CYCLES,
        dm_access_rate=0.28,
        sections=(SectionSpec("delineate_a", 2000),
                  SectionSpec("delineate_b", 2000)),
        sync_code_words=6,
        sync_ops_per_sample=4.0,
        dm_words=500,
    )
    app = AppSpec(
        name="3L-MMD",
        fs=FS,
        phases=[filter_phase, combine, delineate],
        channels=[
            ChannelSpec(producers=("filter",), consumer="combine"),
            ChannelSpec(producers=("combine",), consumer="delineate"),
        ],
        description="three-lead delineation with multi-scale "
                    "morphological derivatives [10]",
    )
    app.validate()
    return app


def rp_class(pathological_ratio: float = 0.20) -> "RpClassApp":
    """RP-CLASS: beat classification + on-demand delineation (Fig. 5-c).

    Args:
        pathological_ratio: fraction of abnormal beats in the input
            (Table I uses 20 %; Fig. 7 sweeps 0-100 %).
    """
    filter_main = _mf_phase(replicas=1, name="filter", sync_code=70)
    classify = PhaseSpec(
        name="classify",
        cycles_per_sample=CLASSIFY_HALF_CYCLES,
        dm_access_rate=0.52,  # NN search loads a prototype word every
        # other cycle: the most data-hungry phase of the suite
        sections=(SectionSpec("rp_project", 1800),
                  SectionSpec("rp_nn", 2000)),
        sync_code_words=14,
        sync_ops_per_sample=8.0,
        replicas=2,  # data-parallel halves of the prototype database
        # The NN search is riddled with data-dependent branches, so the
        # two halves keep drifting out of lock-step despite recovery.
        lockstep_alignment=0.20,
        shared_read_fraction=0.085,
        dm_words=7500,  # half of the projected-prototype database each
    )
    # Chain activations begin from a synchronizer-triggered wake-up, so
    # the two on-demand filter replicas start perfectly aligned and
    # hold lock-step through most of the bounded beat window.
    filter_chain = _mf_phase(replicas=2, trigger=Trigger.ON_ABNORMAL,
                             alignment=0.92, name="filter_chain",
                             shared_reads=0.126, sync_code=70)
    delineate_chain = PhaseSpec(
        name="delineate_chain",
        cycles_per_sample=COMBINE_CYCLES + DELINEATE_CYCLES,
        dm_access_rate=0.28,
        sections=(SectionSpec("combine", 1900),
                  SectionSpec("delineate_a", 2000),
                  SectionSpec("delineate_b", 2000)),
        sync_code_words=8,
        sync_ops_per_sample=4.0,
        trigger=Trigger.ON_ABNORMAL,
        dm_words=900,
    )
    app = RpClassApp(
        name="RP-CLASS",
        fs=FS,
        phases=[filter_main, classify, filter_chain, delineate_chain],
        channels=[
            ChannelSpec(producers=("filter",), consumer="classify"),
            ChannelSpec(producers=("filter_chain",),
                        consumer="delineate_chain",
                        handoffs_per_sample=0.01),  # per-beat hand-off
        ],
        description="random-projection heartbeat classification [22] "
                    "with on-demand three-lead delineation",
    )
    app.pathological_ratio = pathological_ratio
    app.validate()
    return app


@dataclass
class RpClassApp(AppSpec):
    """RP-CLASS with its workload knob (abnormal-beat ratio)."""

    pathological_ratio: float = 0.20


# ---------------------------------------------------------------------------
# Functional runners: execute the real DSP over a record.
# ---------------------------------------------------------------------------

@dataclass
class MfOutput:
    """Functional output of 3L-MF: the conditioned leads."""

    filtered_leads: list[np.ndarray]


@dataclass
class MmdOutput:
    """Functional output of 3L-MMD: fiducial points per beat."""

    filtered_leads: list[np.ndarray]
    combined: np.ndarray
    beats: list[DelineatedBeat]


@dataclass
class RpClassOutput:
    """Functional output of RP-CLASS.

    Attributes:
        detected_peaks: R peaks found on the classifier lead.
        labels: per-peak classification.
        delineated: fiducial points of the beats flagged abnormal
            (the on-demand three-lead delineation results).
    """

    detected_peaks: list[int]
    labels: list[BeatLabel]
    delineated: list[DelineatedBeat]


def run_three_lead_mf(record: EcgRecord) -> MfOutput:
    """Run the 3L-MF pipeline functionally."""
    mf = MorphologicalFilter(fs=record.fs)
    return MfOutput(filtered_leads=[mf.process(lead)
                                    for lead in record.leads[:3]])


def run_three_lead_mmd(record: EcgRecord) -> MmdOutput:
    """Run the 3L-MMD pipeline functionally."""
    mf = MorphologicalFilter(fs=record.fs)
    filtered = [mf.process(lead) for lead in record.leads[:3]]
    combined = combine_leads(filtered)
    beats = MmdDelineator(record.fs).delineate(combined)
    return MmdOutput(filtered_leads=filtered, combined=combined,
                     beats=beats)


def run_rp_class(record: EcgRecord,
                 classifier: RandomProjectionClassifier) -> RpClassOutput:
    """Run the RP-CLASS pipeline functionally.

    Args:
        record: input record (>= 3 leads).
        classifier: a *fitted* random-projection classifier.
    """
    mf = MorphologicalFilter(fs=record.fs)
    main_lead = mf.process(record.leads[0])
    peaks = detect_r_peaks(main_lead, record.fs)
    labels: list[BeatLabel] = []
    abnormal_peaks: list[int] = []
    for peak in peaks:
        label = classifier.classify_beat(main_lead, peak)
        if label is None:
            label = BeatLabel.NORMAL
        labels.append(label)
        if label is not BeatLabel.NORMAL:
            abnormal_peaks.append(peak)

    delineated: list[DelineatedBeat] = []
    if abnormal_peaks:
        # The delineation chain conditions the remaining leads and
        # delineates only the flagged beats.
        others = [mf.process(lead) for lead in record.leads[1:3]]
        combined = combine_leads([main_lead, *others])
        delineated = MmdDelineator(record.fs).delineate(
            combined, r_peaks=abnormal_peaks)
    return RpClassOutput(detected_peaks=peaks, labels=labels,
                         delineated=delineated)
