"""Mapping step of the synchronization methodology (Sec. III-B, step 3).

"Binary code of the different phases is placed in different IM banks in
order to avoid access conflicts and benefit from broadcasting.
Moreover, the threshold between shared and private sections in memory
and the number of synchronization points must be configured."

Two mapping policies are implemented:

* :func:`map_multicore` — one core per phase replica; the shared
  runtime and the first phase's (replicated, broadcast-friendly) code
  share bank 0, every other distinct section gets its own bank so
  cores running different phases never conflict on instruction
  fetches.  Sections are de-duplicated by name: RP-CLASS's on-demand
  filter replicas fetch the *same* ``mf`` code as the main filter.
* :func:`map_singlecore` — the baseline: all sections first-fit packed
  into as few banks as possible ("the mapping of code in the IM is
  less constrained", Sec. V-A); unused banks are powered off.

The plan also derives every static Table I quantity: active cores,
active IM/DM banks, code overhead, and the number of synchronization
points the application needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..isa.layout import DmGeometry, ImGeometry
from .phases import AppSpec, PhaseSpec, SectionSpec, Trigger


class MappingError(Exception):
    """The application does not fit the platform."""


@dataclass(frozen=True)
class CoreAssignment:
    """One phase replica placed on one core.

    Attributes:
        core: core identifier.
        phase: phase name.
        replica: replica index within the phase.
    """

    core: int
    phase: str
    replica: int


@dataclass
class MappingPlan:
    """The result of the mapping step for one platform configuration.

    Attributes:
        app: the mapped application.
        multicore: multi-core target (vs. single-core baseline).
        assignments: phase replica -> core placements.
        section_banks: IM bank of every distinct code section.
        sync_points_used: synchronization points the mapping reserves
            (one per lock-step group + one per channel).
        dm_footprint_words: total data words the application touches.
    """

    app: AppSpec
    multicore: bool
    assignments: list[CoreAssignment]
    section_banks: dict[str, int]
    sync_points_used: int
    dm_footprint_words: int
    _geometry_dm: DmGeometry = field(default_factory=DmGeometry)

    @property
    def active_cores(self) -> int:
        """Cores the application occupies (Table I "Active Cores")."""
        if not self.multicore:
            return 1
        return len({assignment.core for assignment in self.assignments})

    @property
    def im_banks_used(self) -> set[int]:
        """IM banks holding code (Table I "Active IM banks")."""
        return set(self.section_banks.values())

    @property
    def dm_banks_active(self) -> int:
        """Powered DM banks (Table I "Active DM banks").

        All banks on the multi-core platform (the ATU interleaves the
        shared section over every bank, Sec. V-A); the footprint-cover
        on the baseline.
        """
        if self.multicore:
            return self._geometry_dm.banks
        return max(1, math.ceil(self.dm_footprint_words
                                / self._geometry_dm.words_per_bank))

    @property
    def total_code_words(self) -> int:
        """Code size including runtime and inserted sync instructions."""
        sections = distinct_sections(self.app)
        base = self.app.runtime_words + sum(s.words for s in sections)
        return base + self.sync_code_words

    @property
    def sync_code_words(self) -> int:
        """Synchronization instructions inserted by the methodology.

        Phases sharing the same code sections (e.g. RP-CLASS's main
        and on-demand filters both run ``mf``) carry the *same*
        inserted instructions, so they are counted once.
        """
        if not self.multicore:
            return 0
        by_sections: dict[tuple[str, ...], int] = {}
        for phase in self.app.phases:
            key = tuple(section.name for section in phase.sections)
            previous = by_sections.get(key)
            if previous is not None and previous != phase.sync_code_words:
                raise MappingError(
                    f"phases sharing sections {key} declare different "
                    f"sync_code_words")
            by_sections[key] = phase.sync_code_words
        return sum(by_sections.values())

    @property
    def code_overhead(self) -> float:
        """Table I "Code Overhead": sync words / total code words."""
        if not self.multicore:
            return 0.0
        return self.sync_code_words / self.total_code_words

    def cores_of_phase(self, phase: str) -> list[int]:
        """Cores running replicas of ``phase``."""
        return [assignment.core for assignment in self.assignments
                if assignment.phase == phase]


def distinct_sections(app: AppSpec) -> list[SectionSpec]:
    """Sections de-duplicated by name, in phase order."""
    seen: dict[str, SectionSpec] = {}
    for phase in app.phases:
        for section in phase.sections:
            existing = seen.get(section.name)
            if existing is None:
                seen[section.name] = section
            elif existing.words != section.words:
                raise MappingError(
                    f"section {section.name!r} declared with two sizes")
    return list(seen.values())


def dm_footprint(app: AppSpec) -> int:
    """Total data words an application touches (all replicas)."""
    return sum(phase.dm_words * phase.replicas for phase in app.phases)


def sync_points(app: AppSpec) -> int:
    """Synchronization points an application needs (groups + channels)."""
    groups = sum(1 for phase in app.phases
                 if phase.replicas > 1 and phase.lockstep_alignment > 0)
    return groups + len(app.channels)


def map_multicore(app: AppSpec, num_cores: int = 8,
                  geometry: ImGeometry | None = None) -> MappingPlan:
    """Map an application onto the multi-core platform."""
    app.validate()
    geom = geometry or ImGeometry()
    assignments: list[CoreAssignment] = []
    next_core = 0
    for phase in app.phases:
        for replica in range(phase.replicas):
            if next_core >= num_cores:
                raise MappingError(
                    f"{app.name} needs more than {num_cores} cores")
            assignments.append(CoreAssignment(
                core=next_core, phase=phase.name, replica=replica))
            next_core += 1

    section_banks: dict[str, int] = {}
    bank_fill: dict[int, int] = {0: app.runtime_words}
    next_bank = 0
    for index, phase in enumerate(app.phases):
        for section in phase.sections:
            if section.name in section_banks:
                continue  # shared code (e.g. RP-CLASS's mf)
            if index == 0:
                bank = 0  # first phase shares bank 0 with the runtime
            else:
                next_bank += 1
                bank = next_bank
            if bank >= geom.banks:
                raise MappingError(
                    f"{app.name}: out of IM banks at {section.name!r}")
            fill = bank_fill.get(bank, 0) + section.words
            if fill > geom.words_per_bank:
                raise MappingError(
                    f"{app.name}: section {section.name!r} overflows "
                    f"bank {bank}")
            bank_fill[bank] = fill
            section_banks[section.name] = bank

    return MappingPlan(
        app=app, multicore=True, assignments=assignments,
        section_banks=section_banks, sync_points_used=sync_points(app),
        dm_footprint_words=dm_footprint(app))


def map_singlecore(app: AppSpec,
                   geometry: ImGeometry | None = None) -> MappingPlan:
    """Map an application onto the single-core baseline."""
    app.validate()
    geom = geometry or ImGeometry()
    assignments = [CoreAssignment(core=0, phase=phase.name, replica=replica)
                   for phase in app.phases
                   for replica in range(phase.replicas)]

    section_banks: dict[str, int] = {}
    bank_fill = [app.runtime_words] + [0] * (geom.banks - 1)
    for section in distinct_sections(app):
        for bank, fill in enumerate(bank_fill):
            if fill + section.words <= geom.words_per_bank:
                bank_fill[bank] = fill + section.words
                section_banks[section.name] = bank
                break
        else:
            raise MappingError(
                f"{app.name}: section {section.name!r} does not fit IM")

    return MappingPlan(
        app=app, multicore=False, assignments=assignments,
        section_banks=section_banks, sync_points_used=0,
        dm_footprint_words=dm_footprint(app))


def phase_streaming_load_mhz(phase: PhaseSpec, fs: float,
                             with_sync: bool) -> float:
    """Per-replica clock requirement of a streaming phase, in MHz."""
    if phase.trigger is not Trigger.STREAMING:
        return 0.0
    cycles = phase.cycles_per_sample
    if with_sync:
        cycles += phase.sync_ops_per_sample
    return cycles * fs / 1e6


def plan_required_mhz(plan: MappingPlan, with_sync: bool = True) -> float:
    """Worst per-core streaming clock requirement of a placement.

    The paper's policies put one phase replica on each core, so the
    requirement is simply the busiest streaming phase; placements that
    *coalesce* several phases onto one core (the search subsystem
    explores these) must clock that core for the **sum** of its
    streaming loads.  This is the mapping-aware sizing rule the
    behavioural simulator applies to every multi-core plan.

    Args:
        plan: a multi-core mapping plan.
        with_sync: include the executed sync instructions in the load
            (True for the proposed system, False for the no-sync
            strawman).

    Returns:
        The minimum system clock in MHz that keeps every core's
        streaming work real-time.
    """
    loads: dict[int, float] = {}
    app = plan.app
    for assignment in plan.assignments:
        phase = app.phase(assignment.phase)
        load = phase_streaming_load_mhz(phase, app.fs, with_sync)
        if load <= 0.0:
            continue
        loads[assignment.core] = loads.get(assignment.core, 0.0) + load
    return max(loads.values()) if loads else 0.0
