"""Execution tracing for the cycle-level platform.

A :class:`Tracer` records, per core and per retired instruction, the
cycle, program counter and disassembled text — plus synchronization
milestones (gating, wake-ups, point firings).  It is the debugging
layer every real simulation framework ships with, and it is what the
integration tests use to diagnose protocol deadlocks.

Usage::

    system = System.multicore()
    tracer = Tracer.attach(system, cores={0, 1})
    system.load(image)
    system.run(1000)
    print(tracer.render(limit=50))

Attaching wraps ``RiscCore.execute`` and the synchronizer's wake path;
``detach`` restores them.  Tracing costs simulation speed and is meant
for short diagnostic runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..isa.disassembler import format_instruction
from .system import System


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    Attributes:
        cycle: platform cycle the event happened in.
        core: core id.
        kind: ``exec`` | ``gate`` | ``wake``.
        pc: program counter (for ``exec``).
        text: disassembly or a short note.
    """

    cycle: int
    core: int
    kind: str
    pc: int
    text: str


@dataclass
class Tracer:
    """Recorder of per-core execution and synchronization events."""

    system: System
    cores: set[int]
    events: list[TraceEvent] = field(default_factory=list)
    _originals: dict[int, object] = field(default_factory=dict)
    _original_on_wake: object = None
    _attached: bool = False

    @classmethod
    def attach(cls, system: System,
               cores: Iterable[int] | None = None) -> "Tracer":
        """Start tracing ``cores`` (default: all) on ``system``."""
        selected = set(cores) if cores is not None \
            else set(range(system.num_cores))
        tracer = cls(system=system, cores=selected)
        tracer._hook()
        return tracer

    def _hook(self) -> None:
        if self._attached:
            return
        for core in self.system.cores:
            if core.core_id not in self.cores:
                continue
            original = core.execute
            self._originals[core.core_id] = original

            def traced_execute(instr, _core=core, _orig=original):
                pc = _core.pc
                effect = _orig(instr)
                self.events.append(TraceEvent(
                    cycle=self.system.cycle, core=_core.core_id,
                    kind="exec", pc=pc,
                    text=format_instruction(instr)))
                return effect

            core.execute = traced_execute  # type: ignore[method-assign]

        synchronizer = self.system.synchronizer
        original_sleep = synchronizer.sleep
        self._originals[-1] = original_sleep

        def traced_sleep(core_id: int) -> bool:
            gated = original_sleep(core_id)
            if gated and core_id in self.cores:
                self.events.append(TraceEvent(
                    cycle=self.system.cycle, core=core_id, kind="gate",
                    pc=self.system.cores[core_id].pc,
                    text="clock-gated"))
            return gated

        synchronizer.sleep = traced_sleep  # type: ignore[method-assign]

        self._original_on_wake = self.system.synchronizer.on_wake

        def traced_wake(core_id: int) -> None:
            if core_id in self.cores:
                self.events.append(TraceEvent(
                    cycle=self.system.cycle, core=core_id, kind="wake",
                    pc=self.system.cores[core_id].pc, text="resumed"))
            if callable(self._original_on_wake):
                self._original_on_wake(core_id)

        self.system.synchronizer.on_wake = traced_wake
        self._attached = True

    def detach(self) -> None:
        """Restore the un-traced execution paths."""
        if not self._attached:
            return
        for core_id, original in self._originals.items():
            if core_id == -1:
                self.system.synchronizer.sleep = original  # type: ignore
            else:
                self.system.cores[core_id].execute = \
                    original  # type: ignore[method-assign]
        self.system.synchronizer.on_wake = self._original_on_wake
        self._originals.clear()
        self._attached = False

    def of_core(self, core: int) -> list[TraceEvent]:
        """Events of one core, in order."""
        return [event for event in self.events if event.core == core]

    def gate_events(self) -> list[TraceEvent]:
        """All clock-gating and wake events."""
        return [event for event in self.events
                if event.kind in ("gate", "wake")]

    def render(self, limit: int | None = None) -> str:
        """Human-readable trace listing."""
        rows = self.events if limit is None else self.events[:limit]
        lines = [f"{event.cycle:>8}  core{event.core}  "
                 f"{event.pc:#06x}  {event.kind:<5} {event.text}"
                 for event in rows]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
