"""Address Translation Units: private/shared DM split.

Sec. IV-A: "each core is equipped with a combinational Address
Translation Unit (ATU) consisting of a multiplexor that appends a
unique tag per core when an access to the private section is requested.
This implementation interleaves the shared section of DM between all
the available memory banks."

Two translators are provided:

* :class:`MulticoreAtu` — the paper's ATU.  Private logical addresses
  ``[0, private_words)`` are tagged with the issuing core's id and land
  in that core's slice of the banks (low indices of each bank group);
  shared addresses are interleaved modulo the number of banks (high
  indices).  Because of the interleaving, *every* DM bank backs part of
  the shared section, which is why Table I shows all 16 DM banks active
  in the multi-core configurations.
* :class:`SingleCoreTranslation` — the baseline's simple decoder:
  linear logical-to-physical mapping, so unused trailing banks can be
  powered off (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.layout import DmGeometry, MemoryMap
from .memory import MemoryFault


@dataclass(frozen=True)
class PhysicalLocation:
    """A physical (bank, index) data-memory location."""

    bank: int
    index: int


class MulticoreAtu:
    """The paper's per-core combinational ATU.

    Physical layout inside each bank: the low ``private_slice`` words
    back the private sections, the remaining words back the interleaved
    shared section.

    * Private: core ``c`` owns ``banks_per_core`` consecutive banks'
      private slices; logical address ``a`` maps to bank
      ``c * banks_per_core + a // private_slice``, index
      ``a % private_slice``.  The bank number is precisely the paper's
      "unique tag appended per core".
    * Shared: logical offset ``s = a - shared_base`` maps to bank
      ``s % banks``, index ``private_slice + s // banks``.
    """

    def __init__(self, num_cores: int, geometry: DmGeometry,
                 memory_map: MemoryMap) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        if geometry.banks % num_cores:
            raise ValueError(
                f"{geometry.banks} banks not divisible by "
                f"{num_cores} cores")
        self.num_cores = num_cores
        self.geometry = geometry
        self.memory_map = memory_map
        self.banks_per_core = geometry.banks // num_cores
        if memory_map.private_words % self.banks_per_core:
            raise ValueError("private_words must split evenly over the "
                             "banks of one core")
        self.private_slice = memory_map.private_words // self.banks_per_core
        if self.private_slice > geometry.words_per_bank:
            raise ValueError("private section exceeds bank capacity")
        shared_capacity = (geometry.words_per_bank - self.private_slice) \
            * geometry.banks
        if memory_map.shared_words > shared_capacity:
            raise ValueError(
                f"shared section ({memory_map.shared_words} words) exceeds "
                f"remaining physical capacity ({shared_capacity} words)")

    def translate(self, core: int, address: int) -> PhysicalLocation:
        """Translate a logical address issued by ``core``."""
        mmap = self.memory_map
        if mmap.is_peripheral(address):
            raise MemoryFault(
                f"address {address:#06x} is memory-mapped I/O, not DM")
        if address < mmap.private_words:
            bank = (core * self.banks_per_core
                    + address // self.private_slice)
            return PhysicalLocation(bank=bank,
                                    index=address % self.private_slice)
        if address < mmap.shared_limit:
            offset = address - mmap.shared_base
            bank = offset % self.geometry.banks
            index = self.private_slice + offset // self.geometry.banks
            return PhysicalLocation(bank=bank, index=index)
        raise MemoryFault(
            f"core {core}: logical address {address:#06x} is unmapped "
            f"(shared section ends at {mmap.shared_limit:#06x})")

    def shared_location(self, address: int) -> PhysicalLocation:
        """Translate a shared address without a core tag.

        Used by the synchronizer unit, whose port only ever touches the
        shared section (synchronization points).
        """
        mmap = self.memory_map
        if not mmap.shared_base <= address < mmap.shared_limit:
            raise MemoryFault(
                f"address {address:#06x} is outside the shared section")
        offset = address - mmap.shared_base
        return PhysicalLocation(
            bank=offset % self.geometry.banks,
            index=self.private_slice + offset // self.geometry.banks)

    def banks_for_core_private(self, core: int) -> set[int]:
        """Banks whose private slices belong to ``core``."""
        first = core * self.banks_per_core
        return set(range(first, first + self.banks_per_core))


class SingleCoreTranslation:
    """The baseline's decoder: linear logical-to-physical mapping.

    "simpler decoders can be used instead of crossbars" (Sec. IV-B);
    data is packed from address 0 upward so trailing banks can be
    powered off when the application footprint is small.
    """

    def __init__(self, geometry: DmGeometry, memory_map: MemoryMap) -> None:
        self.geometry = geometry
        self.memory_map = memory_map

    def translate(self, core: int, address: int) -> PhysicalLocation:
        """Translate a logical address (``core`` accepted for symmetry)."""
        mmap = self.memory_map
        if mmap.is_peripheral(address):
            raise MemoryFault(
                f"address {address:#06x} is memory-mapped I/O, not DM")
        if address >= self.geometry.total_words:
            raise MemoryFault(f"address {address:#06x} beyond physical DM")
        return PhysicalLocation(
            bank=address // self.geometry.words_per_bank,
            index=address % self.geometry.words_per_bank)

    def shared_location(self, address: int) -> PhysicalLocation:
        """Synchronizer-port translation (same linear mapping)."""
        return self.translate(0, address)

    def banks_for_footprint(self, highest_address: int) -> set[int]:
        """Banks needed to cover addresses ``[0, highest_address]``."""
        last_bank = highest_address // self.geometry.words_per_bank
        return set(range(last_bank + 1))
