"""Multi-channel ADC peripheral with memory-mapped registers.

Sec. IV-B: "a three-channels ADC unit is interfaced to the system using
memory mapped registers located in shared DM and data-ready interrupt
lines connected to the synchronizer, which forwards them to cores."

Each channel is fed from a pre-loaded sample stream (the synthetic ECG
leads).  The ADC samples at a constant signal-domain rate; the platform
converts that rate into a clock-cycle period.  When a new sample lands:

* the channel's data register is updated,
* its data-ready status bit is set,
* its interrupt line toward the synchronizer is raised.

Reading the data register clears the ready bit (read-to-acknowledge).
If a sample arrives while the previous one is still unread the channel
records an *overrun* — the real-time-violation detector used by tests:
a correctly sized platform never overruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass
class AdcChannelStats:
    """Per-channel activity counters.

    Attributes:
        delivered: samples written into the data register.
        reads: data-register reads by cores.
        overruns: samples that overwrote an unread predecessor.
    """

    delivered: int = 0
    reads: int = 0
    overruns: int = 0


class AdcChannel:
    """One ADC channel backed by a sample stream."""

    def __init__(self, samples: Sequence[int]) -> None:
        self._samples = samples
        self._next = 0
        self.value = 0
        self.ready = False
        self.enabled = True
        self.stats = AdcChannelStats()

    @property
    def exhausted(self) -> bool:
        """True when the backing stream has been fully delivered."""
        return self._next >= len(self._samples)

    def deliver(self) -> bool:
        """Latch the next sample; True if a sample was delivered."""
        if not self.enabled or self.exhausted:
            return False
        if self.ready:
            self.stats.overruns += 1
        self.value = self._samples[self._next] & 0xFFFF
        self._next += 1
        self.ready = True
        self.stats.delivered += 1
        return True

    def read(self) -> int:
        """Core-side data-register read (clears the ready bit)."""
        self.stats.reads += 1
        self.ready = False
        return self.value


class Adc:
    """The three-channel ADC block.

    Args:
        streams: one sample sequence per channel.
        period_cycles: clock cycles between consecutive samples (all
            channels sample simultaneously, as with a multi-lead ECG
            front-end).
        raise_irq: callback into the synchronizer, invoked with the
            channel's interrupt line number on each delivery.
        first_irq_line: interrupt line of channel 0 (channel ``c`` uses
            ``first_irq_line + c``).
    """

    def __init__(self, streams: Sequence[Sequence[int]], period_cycles: int,
                 raise_irq: Callable[[int], None],
                 first_irq_line: int = 0) -> None:
        if period_cycles < 1:
            raise ValueError("ADC period must be at least one cycle")
        self.channels = [AdcChannel(stream) for stream in streams]
        self.period_cycles = period_cycles
        self.raise_irq = raise_irq
        self.first_irq_line = first_irq_line
        self._countdown = period_cycles

    def tick(self) -> None:
        """Advance one clock cycle; deliver samples on period boundaries."""
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.period_cycles
        for number, channel in enumerate(self.channels):
            if channel.deliver():
                self.raise_irq(self.first_irq_line + number)

    def read_data(self, channel: int) -> int:
        """Memory-mapped data-register read."""
        return self.channels[channel].read()

    def status_mask(self) -> int:
        """Memory-mapped status read: data-ready bitmask."""
        mask = 0
        for number, channel in enumerate(self.channels):
            if channel.ready:
                mask |= 1 << number
        return mask

    def write_ctrl(self, mask: int) -> None:
        """Memory-mapped control write: per-channel enable bits."""
        for number, channel in enumerate(self.channels):
            channel.enabled = bool(mask & (1 << number))

    @property
    def total_overruns(self) -> int:
        """Sum of overruns across channels (0 == real time met)."""
        return sum(channel.stats.overruns for channel in self.channels)

    @property
    def all_exhausted(self) -> bool:
        """True when every enabled channel delivered its whole stream."""
        return all(channel.exhausted or not channel.enabled
                   for channel in self.channels)
