"""Logarithmic-interconnect crossbars with broadcast support.

The platform connects cores to the memory banks through crossbars that
"allow combinational (single-cycle) accesses from cores to memories"
following the logarithmic interconnect of Kakoee et al. [19], "modified
to allow broadcasting of data and instructions" (Sec. IV-A): multiple
read requests for the *same location* in the *same cycle* merge into a
single memory access whose result is fanned out to all requesters.

Requests to the same bank but *different* addresses conflict; a
round-robin arbiter grants one address group per bank per cycle and the
losers retry next cycle (a pipeline stall for the losing core).

:class:`Crossbar` models this for N ports; the single-core baseline
uses the same class with one port (where neither broadcasting nor
arbitration can occur), matching the paper's remark that a simple
decoder suffices — the energy model, not the timing model, captures the
decoder-vs-crossbar cost difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemRequest:
    """One port's request during one cycle.

    Attributes:
        port: requesting port (core id).
        bank: target bank number.
        index: word index within the bank.
        is_write: write transaction (writes never broadcast).
        value: data to store for writes.
    """

    port: int
    bank: int
    index: int
    is_write: bool = False
    value: int = 0


@dataclass
class GrantGroup:
    """All requests granted for one bank in one cycle.

    For reads, ``requests`` may hold several ports (a broadcast); for
    writes it always holds exactly one.
    """

    bank: int
    index: int
    is_write: bool
    requests: list[MemRequest]

    @property
    def broadcast_extra(self) -> int:
        """Requests served beyond the first (merged accesses)."""
        return len(self.requests) - 1


@dataclass
class ArbitrationResult:
    """Outcome of one cycle of crossbar arbitration.

    Attributes:
        granted: one :class:`GrantGroup` per bank that saw a grant.
        stalled: requests that lost arbitration and must retry.
    """

    granted: list[GrantGroup] = field(default_factory=list)
    stalled: list[MemRequest] = field(default_factory=list)


@dataclass
class CrossbarStats:
    """Cumulative crossbar activity (inputs to the power model).

    Attributes:
        requests: total port requests presented.
        grants: requests served (including broadcast-merged ones).
        accesses: actual memory accesses performed (one per grant
            group), i.e. ``grants - broadcast_merged``.
        broadcast_merged: requests served by another port's access.
        conflicts: requests stalled by bank conflicts.
        broadcast_cycles: cycles in which at least one merge happened.
    """

    requests: int = 0
    grants: int = 0
    accesses: int = 0
    broadcast_merged: int = 0
    conflicts: int = 0
    broadcast_cycles: int = 0

    @property
    def broadcast_fraction(self) -> float:
        """Fraction of granted requests served by a merged access.

        This is the "IM/DM Broadcast (%)" metric of Table I: how much
        memory traffic was eliminated by the broadcasting interconnect.
        """
        if self.grants == 0:
            return 0.0
        return self.broadcast_merged / self.grants


class Crossbar:
    """N-port crossbar with per-bank round-robin arbitration.

    Args:
        ports: number of requesting ports (cores).
        banks: number of memory banks on the other side.
        broadcast: merge same-address same-cycle reads (the paper's
            modification); disable for the ablation study ABL-1.
        name: diagnostic name.
    """

    def __init__(self, ports: int, banks: int, broadcast: bool = True,
                 name: str = "xbar") -> None:
        self.ports = ports
        self.num_banks = banks
        self.broadcast = broadcast
        self.name = name
        self.stats = CrossbarStats()
        self._rr_priority = [0] * banks  # per-bank round-robin pointer

    def arbitrate(self, requests: list[MemRequest]) -> ArbitrationResult:
        """Resolve one cycle's worth of requests.

        Grant policy per bank: requests are grouped into transactions
        (same-address reads form one mergeable group when broadcasting
        is on; each write and, without broadcasting, each read is its
        own transaction).  The transaction containing the
        highest-priority port (round-robin) wins; everything else
        stalls.
        """
        result = ArbitrationResult()
        self.stats.requests += len(requests)
        by_bank: dict[int, list[MemRequest]] = {}
        for request in requests:
            if request.port >= self.ports:
                raise ValueError(
                    f"{self.name}: port {request.port} out of range")
            if request.bank >= self.num_banks:
                raise ValueError(
                    f"{self.name}: bank {request.bank} out of range")
            by_bank.setdefault(request.bank, []).append(request)

        merged_this_cycle = False
        for bank, bank_requests in by_bank.items():
            groups = self._group(bank_requests)
            winner = self._pick(bank, groups)
            for group in groups:
                if group is winner:
                    result.granted.append(group)
                    self.stats.grants += len(group.requests)
                    self.stats.accesses += 1
                    if group.broadcast_extra:
                        self.stats.broadcast_merged += group.broadcast_extra
                        merged_this_cycle = True
                else:
                    result.stalled.extend(group.requests)
                    self.stats.conflicts += len(group.requests)
        if merged_this_cycle:
            self.stats.broadcast_cycles += 1
        return result

    def _group(self, requests: list[MemRequest]) -> list[GrantGroup]:
        """Partition one bank's requests into candidate transactions."""
        groups: list[GrantGroup] = []
        read_groups: dict[int, GrantGroup] = {}
        for request in requests:
            if request.is_write or not self.broadcast:
                groups.append(GrantGroup(
                    bank=request.bank, index=request.index,
                    is_write=request.is_write, requests=[request]))
            else:
                group = read_groups.get(request.index)
                if group is None:
                    group = GrantGroup(
                        bank=request.bank, index=request.index,
                        is_write=False, requests=[])
                    read_groups[request.index] = group
                    groups.append(group)
                group.requests.append(request)
        return groups

    def _pick(self, bank: int, groups: list[GrantGroup]) -> GrantGroup:
        """Round-robin: grant the group containing the priority port."""
        if len(groups) == 1:
            return groups[0]
        priority = self._rr_priority[bank]
        best: GrantGroup | None = None
        best_distance = self.ports + 1
        for group in groups:
            distance = min((request.port - priority) % self.ports
                           for request in group.requests)
            if distance < best_distance:
                best_distance = distance
                best = group
        assert best is not None
        self._rr_priority[bank] = (priority + 1) % self.ports
        return best

    def reset_stats(self) -> None:
        """Zero the cumulative counters."""
        self.stats = CrossbarStats()
