"""Cycle-level hardware platform (systems S6-S11 of DESIGN.md).

Cores, banked memories with power gating, broadcasting crossbars, the
private/shared ATU, the memory-mapped ADC, and the single-/multi-core
platform top levels of the paper's Fig. 2.
"""

from .adc import Adc, AdcChannel, AdcChannelStats
from .atu import MulticoreAtu, PhysicalLocation, SingleCoreTranslation
from .core import CoreStats, Effect, EffectKind, RiscCore
from .interconnect import (
    ArbitrationResult,
    Crossbar,
    CrossbarStats,
    GrantGroup,
    MemRequest,
)
from .memory import BankedMemory, MemoryActivity, MemoryBank, MemoryFault
from .system import SimulationError, System, SystemActivity
from .tracing import TraceEvent, Tracer

__all__ = [
    "Adc",
    "AdcChannel",
    "AdcChannelStats",
    "ArbitrationResult",
    "BankedMemory",
    "CoreStats",
    "Crossbar",
    "CrossbarStats",
    "Effect",
    "EffectKind",
    "GrantGroup",
    "MemRequest",
    "MemoryActivity",
    "MemoryBank",
    "MemoryFault",
    "MulticoreAtu",
    "PhysicalLocation",
    "RiscCore",
    "SimulationError",
    "SingleCoreTranslation",
    "System",
    "SystemActivity",
    "TraceEvent",
    "Tracer",
]
