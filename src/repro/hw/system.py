"""Cycle-level WBSN platform: cores + memories + crossbars + synchronizer.

This module wires together the pieces of Fig. 2: parallel RISC cores,
multi-banked instruction and data memories behind broadcasting
crossbars, the synchronizer unit, per-core ATUs and the memory-mapped
ADC.  A :class:`System` advances in lock-step clock cycles:

1. non-blocked cores present instruction fetches; the IM crossbar
   arbitrates (same-address fetches merge into one broadcast access);
2. granted cores execute; loads/stores become DM crossbar requests
   (same-address reads merge; bank conflicts stall the losers);
3. synchronization instructions go to the synchronizer, which merges
   same-point requests, updates the points in shared DM, clock-gates
   sleeping cores and wakes registered ones on counter zero-crossings;
4. the ADC ticks, possibly latching new samples and raising data-ready
   interrupt lines that the synchronizer forwards to subscribed cores.

The same class models the paper's two configurations:

* ``System.multicore(...)`` — 8 cores, ATU-split DM, crossbars;
* ``System.singlecore(...)`` — 1 core, linear DM decoding, no
  broadcast opportunities (a crossbar with one port degenerates to the
  baseline's decoder; the cost difference is the power model's job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.synchronizer import Synchronizer, SynchronizerStats
from ..isa.encoding import Instruction, decode
from ..isa.errors import LoadError
from ..isa.layout import (
    DEFAULT_GEOMETRY,
    IRQ_ADC_CH0,
    PlatformGeometry,
    REG_ADC_CTRL,
    REG_ADC_DATA0,
    REG_ADC_STATUS,
    REG_CORE_ID,
    REG_CYCLE_HI,
    REG_CYCLE_LO,
    REG_INT_STATUS,
    REG_INT_SUBSCRIBE,
)
from ..isa.program import ProgramImage
from ..isa.spec import INSTR_MASK, WORD_MASK
from .adc import Adc
from .atu import MulticoreAtu, SingleCoreTranslation
from .core import Effect, EffectKind, RiscCore
from .interconnect import Crossbar, CrossbarStats, MemRequest
from .memory import BankedMemory, MemoryActivity, MemoryFault


class SimulationError(Exception):
    """The simulation reached an illegal or dead state."""


@dataclass
class SystemActivity:
    """Everything the power model needs to know about a run.

    Attributes:
        cycles: simulated clock cycles.
        active_cores: cores that executed at least one instruction.
        core_active_cycles: per-core clocked (non-gated) cycles.
        core_gated_cycles: per-core clock-gated cycles.
        instructions: total instructions retired.
        sync_instructions: synchronization-ISE instructions retired.
        im: instruction memory activity.
        dm: data memory activity.
        im_xbar: instruction crossbar counters.
        dm_xbar: data crossbar counters.
        sync: synchronizer counters.
        adc_overruns: real-time violations (must be zero).
    """

    cycles: int
    active_cores: int
    core_active_cycles: list[int]
    core_gated_cycles: list[int]
    instructions: int
    sync_instructions: int
    im: MemoryActivity
    dm: MemoryActivity
    im_xbar: CrossbarStats
    dm_xbar: CrossbarStats
    sync: SynchronizerStats
    adc_overruns: int

    @property
    def im_broadcast_fraction(self) -> float:
        """Table I "IM Broadcast (%)" as a fraction."""
        return self.im_xbar.broadcast_fraction

    @property
    def dm_broadcast_fraction(self) -> float:
        """Table I "DM Broadcast (%)" as a fraction."""
        return self.dm_xbar.broadcast_fraction

    @property
    def runtime_overhead(self) -> float:
        """Table I "Run-time Overhead": sync instructions / instructions."""
        if self.instructions == 0:
            return 0.0
        return self.sync_instructions / self.instructions


class _SyncDmPort:
    """Synchronizer port into shared data memory.

    The synchronizer performs its merged sync-point modifications
    through a dedicated port; accesses are counted by the banks like
    any other DM traffic.
    """

    def __init__(self, system: "System") -> None:
        self._system = system

    def read(self, address: int) -> int:
        location = self._system.translation.shared_location(address)
        return self._system.dm.read(location.bank, location.index)

    def write(self, address: int, value: int) -> None:
        location = self._system.translation.shared_location(address)
        self._system.dm.write(location.bank, location.index, value)


@dataclass
class _Pending:
    """A memory effect waiting for a DM grant."""

    effect: Effect


class System:
    """The cycle-level platform (multi-core or single-core baseline)."""

    def __init__(self, num_cores: int,
                 geometry: PlatformGeometry = DEFAULT_GEOMETRY,
                 multicore_dm: bool = True, broadcast: bool = True,
                 strict_sync: bool = True) -> None:
        geometry.validate()
        self.geometry = geometry
        self.num_cores = num_cores
        self.multicore_dm = multicore_dm
        self.cycle = 0
        self.cores = [RiscCore(core_id) for core_id in range(num_cores)]
        self.im = BankedMemory(geometry.im.banks, geometry.im.words_per_bank,
                               INSTR_MASK, name="im")
        self.dm = BankedMemory(geometry.dm.banks, geometry.dm.words_per_bank,
                               WORD_MASK, name="dm")
        self.im_xbar = Crossbar(num_cores, geometry.im.banks,
                                broadcast=broadcast, name="im_xbar")
        self.dm_xbar = Crossbar(num_cores, geometry.dm.banks,
                                broadcast=broadcast, name="dm_xbar")
        if multicore_dm:
            self.translation: MulticoreAtu | SingleCoreTranslation = \
                MulticoreAtu(num_cores, geometry.dm, geometry.memory_map)
        else:
            self.translation = SingleCoreTranslation(geometry.dm,
                                                     geometry.memory_map)
        self.synchronizer = Synchronizer(
            num_cores=num_cores,
            num_points=geometry.memory_map.sync_points,
            point_base=geometry.memory_map.sync_point_base,
            storage=_SyncDmPort(self), strict=strict_sync)
        self.adc: Adc | None = None
        self._decoded: dict[int, Instruction] = {}
        self._pending: list[_Pending | None] = [None] * num_cores
        self._halted_at_load: set[int] = set(range(num_cores))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def multicore(cls, num_cores: int = 8,
                  geometry: PlatformGeometry = DEFAULT_GEOMETRY,
                  broadcast: bool = True,
                  strict_sync: bool = True) -> "System":
        """The paper's target system (Sec. IV-B)."""
        return cls(num_cores=num_cores, geometry=geometry,
                   multicore_dm=True, broadcast=broadcast,
                   strict_sync=strict_sync)

    @classmethod
    def singlecore(cls, geometry: PlatformGeometry = DEFAULT_GEOMETRY,
                   strict_sync: bool = True) -> "System":
        """The paper's baseline system (Sec. IV-B)."""
        return cls(num_cores=1, geometry=geometry, multicore_dm=False,
                   broadcast=False, strict_sync=strict_sync)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, image: ProgramImage,
             dm_banks_on: set[int] | None = None) -> None:
        """Load a program image and configure bank power.

        Args:
            image: assembled/linked program.
            dm_banks_on: DM banks to keep powered.  ``None`` keeps the
                platform default: *all* banks for the multi-core system
                (the ATU interleaves the shared section over every
                bank, Sec. V-A) or the smallest prefix covering the
                initialised data for the single-core baseline.
        """
        # Reset the synchronizer first: clearing the points writes into
        # shared DM, which must happen while all banks are still powered.
        self.synchronizer.reset()
        geom = self.geometry.im
        used_im_banks: set[int] = set()
        for address, word in image.im.items():
            bank = geom.bank_of(address)
            if bank >= geom.banks:
                raise LoadError(f"IM address {address:#06x} beyond memory")
            self.im.bank(bank).poke(address % geom.words_per_bank, word)
            used_im_banks.add(bank)
            try:
                self._decoded[address] = decode(word)
            except Exception:
                pass  # raw data words are not executable
        self.im.power_off_unused(used_im_banks)

        for address, value in image.dm_init.items():
            location = self._dm_init_location(address)
            self.dm.bank(location.bank).poke(location.index, value)

        if dm_banks_on is None:
            if self.multicore_dm:
                dm_banks_on = set(range(self.geometry.dm.banks))
            else:
                translation = self.translation
                assert isinstance(translation, SingleCoreTranslation)
                dm_banks_on = translation.banks_for_footprint(
                    image.dm_highest_address())
        self.dm.power_off_unused(dm_banks_on)

        for core in self.cores:
            entry = image.entry_for(core.core_id)
            if entry is None:
                core.halted = True
            else:
                core.reset(entry)
                self._halted_at_load.discard(core.core_id)
        # Activity counters start from a clean slate (the synchronizer
        # reset above already touched DM).
        self.im.reset_counters()
        self.dm.reset_counters()
        self.im_xbar.reset_stats()
        self.dm_xbar.reset_stats()

    def _dm_init_location(self, address: int):
        if self.multicore_dm:
            translation = self.translation
            assert isinstance(translation, MulticoreAtu)
            mmap = self.geometry.memory_map
            if address < mmap.shared_base:
                raise LoadError(
                    f".dm address {address:#06x} is core-private; only "
                    f"shared addresses can be statically initialised on "
                    f"the multi-core platform")
            return translation.shared_location(address)
        return self.translation.translate(0, address)

    def attach_adc(self, streams: Sequence[Sequence[int]],
                   period_cycles: int) -> Adc:
        """Attach the ADC front-end and wire its IRQs to the synchronizer."""
        self.adc = Adc(streams, period_cycles,
                       raise_irq=self.synchronizer.raise_interrupt,
                       first_irq_line=IRQ_ADC_CH0)
        return self.adc

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the platform by one clock cycle."""
        self.cycle += 1
        mem_queue: list[tuple[RiscCore, Effect]] = []
        fetch_requests: list[MemRequest] = []
        geom = self.geometry.im

        for core in self.cores:
            if core.halted:
                core.stats.halted_cycles += 1
                continue
            if core.gated:
                core.stats.gated_cycles += 1
                continue
            core.stats.active_cycles += 1
            if core.busy_cycles_left > 0:
                core.busy_cycles_left -= 1
                core.stats.busy_cycles += 1
                continue
            pending = self._pending[core.core_id]
            if pending is not None:
                mem_queue.append((core, pending.effect))
                continue
            fetch_requests.append(MemRequest(
                port=core.core_id, bank=geom.bank_of(core.pc),
                index=core.pc % geom.words_per_bank))

        fetch_result = self.im_xbar.arbitrate(fetch_requests)
        for request in fetch_result.stalled:
            self.cores[request.port].stats.fetch_stalls += 1
        for group in fetch_result.granted:
            self.im.read(group.bank, group.index)
            address = group.bank * geom.words_per_bank + group.index
            instr = self._decoded.get(address)
            if instr is None:
                raise SimulationError(
                    f"core {group.requests[0].port}: fetch from "
                    f"uninitialised IM address {address:#06x}")
            for request in group.requests:
                core = self.cores[request.port]
                effect = core.execute(instr)
                self._dispatch(core, effect, mem_queue)

        self._serve_memory(mem_queue)

        for core_id in self.synchronizer.end_cycle():
            self.cores[core_id].gated = False

        if self.adc is not None:
            self.adc.tick()

    def _dispatch(self, core: RiscCore, effect: Effect,
                  mem_queue: list[tuple[RiscCore, Effect]]) -> None:
        kind = effect.kind
        if kind is EffectKind.NONE:
            return
        if kind is EffectKind.HALT:
            core.halted = True
            return
        if kind is EffectKind.SYNC:
            assert effect.sync_op is not None
            self.synchronizer.submit(core.core_id, effect.sync_op,
                                     effect.sync_point)
            return
        if kind is EffectKind.SLEEP:
            if self.synchronizer.sleep(core.core_id):
                core.gated = True
            return
        # LOAD / STORE
        if self.geometry.memory_map.is_peripheral(effect.address):
            self._peripheral_access(core, effect)
            return
        mem_queue.append((core, effect))

    def _serve_memory(self, mem_queue: list[tuple[RiscCore, Effect]]) -> None:
        if not mem_queue:
            return
        requests = []
        effects: dict[int, Effect] = {}
        for core, effect in mem_queue:
            location = self.translation.translate(core.core_id,
                                                  effect.address)
            effects[core.core_id] = effect
            requests.append(MemRequest(
                port=core.core_id, bank=location.bank, index=location.index,
                is_write=effect.kind is EffectKind.STORE,
                value=effect.value))
        result = self.dm_xbar.arbitrate(requests)
        for request in result.stalled:
            core = self.cores[request.port]
            core.stats.mem_stalls += 1
            self._pending[request.port] = _Pending(effects[request.port])
        for group in result.granted:
            if group.is_write:
                request = group.requests[0]
                self.dm.write(group.bank, group.index, request.value)
                self._pending[request.port] = None
            else:
                value = self.dm.read(group.bank, group.index)
                for request in group.requests:
                    core = self.cores[request.port]
                    core.complete_load(effects[request.port], value)
                    self._pending[request.port] = None

    def _peripheral_access(self, core: RiscCore, effect: Effect) -> None:
        """Serve a memory-mapped register access (combinational)."""
        address = effect.address
        if effect.kind is EffectKind.STORE:
            if address == REG_INT_SUBSCRIBE:
                self.synchronizer.subscribe(core.core_id, effect.value)
            elif address == REG_ADC_CTRL and self.adc is not None:
                self.adc.write_ctrl(effect.value)
            else:
                raise MemoryFault(
                    f"core {core.core_id}: write to unmapped peripheral "
                    f"register {address:#06x}")
            return
        if address == REG_INT_SUBSCRIBE:
            value = self.synchronizer.subscription(core.core_id)
        elif address == REG_INT_STATUS:
            value = self.synchronizer.interrupts.pending_lines
        elif REG_ADC_DATA0 <= address < REG_ADC_DATA0 + 3:
            if self.adc is None:
                raise MemoryFault("ADC not attached")
            value = self.adc.read_data(address - REG_ADC_DATA0)
        elif address == REG_ADC_STATUS:
            value = self.adc.status_mask() if self.adc is not None else 0
        elif address == REG_CORE_ID:
            value = core.core_id
        elif address == REG_CYCLE_LO:
            value = self.cycle & 0xFFFF
        elif address == REG_CYCLE_HI:
            value = (self.cycle >> 16) & 0xFFFF
        else:
            raise MemoryFault(
                f"core {core.core_id}: read from unmapped peripheral "
                f"register {address:#06x}")
        core.complete_load(effect, value)

    # ------------------------------------------------------------------
    # Run helpers
    # ------------------------------------------------------------------

    @property
    def all_halted(self) -> bool:
        """True once every core has executed ``halt``."""
        return all(core.halted for core in self.cores)

    def deadlocked(self) -> bool:
        """True if no core can ever make progress again.

        Every non-halted core is clock-gated and no interrupt source
        can still fire (no ADC samples left and no pending lines).
        """
        if any(not core.halted and not core.gated for core in self.cores):
            return False
        if all(core.halted for core in self.cores):
            return False
        if self.synchronizer.interrupts.pending_lines:
            return False
        if self.adc is not None and not self.adc.all_exhausted:
            return False
        return True

    def run(self, max_cycles: int, stop_on_halt: bool = True) -> int:
        """Run up to ``max_cycles``; returns cycles actually simulated.

        Raises :class:`SimulationError` on deadlock (all cores gated
        with no wake source left).
        """
        start = self.cycle
        while self.cycle - start < max_cycles:
            if stop_on_halt and self.all_halted:
                break
            if self.deadlocked():
                raise SimulationError(
                    "deadlock: all cores clock-gated with no event source")
            self.step()
        return self.cycle - start

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def dm_peek(self, address: int, core: int = 0) -> int:
        """Debug read of logical DM ``address`` as seen by ``core``."""
        location = self.translation.translate(core, address)
        return self.dm.bank(location.bank).peek(location.index)

    def dm_poke(self, address: int, value: int, core: int = 0) -> None:
        """Debug write of logical DM ``address`` as seen by ``core``."""
        location = self.translation.translate(core, address)
        self.dm.bank(location.bank).poke(location.index, value)

    def activity(self) -> SystemActivity:
        """Snapshot of all counters (the power model's input)."""
        return SystemActivity(
            cycles=self.cycle,
            active_cores=sum(
                1 for core in self.cores
                if core.core_id not in self._halted_at_load),
            core_active_cycles=[c.stats.active_cycles for c in self.cores],
            core_gated_cycles=[c.stats.gated_cycles for c in self.cores],
            instructions=sum(c.stats.instructions for c in self.cores),
            sync_instructions=sum(c.stats.sync_issued for c in self.cores),
            im=self.im.activity(),
            dm=self.dm.activity(),
            im_xbar=self.im_xbar.stats,
            dm_xbar=self.dm_xbar.stats,
            sync=self.synchronizer.stats,
            adc_overruns=self.adc.total_overruns if self.adc else 0,
        )
