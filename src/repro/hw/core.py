"""Cycle-level model of the 16-bit RISC computing core.

Sec. IV-A: "Each computing core consists of a 16-bits RISC architecture
featuring a three-stages pipeline with forwarding paths.  Their
instruction set has been extended to support the proposed
synchronization technique."

The model is *cycle-approximate*: instructions execute atomically but
are charged their pipeline timing — one cycle for ALU/memory (the
crossbar is combinational), two for multiplies, plus one flush cycle
for taken branches and jumps.  Full forwarding means no data hazards.
Memory-bank conflicts surface as stalls imposed by the platform, not by
this class.

The core communicates with the platform through :class:`Effect` values
returned by :meth:`RiscCore.execute`; the platform performs arbitration
and calls back :meth:`RiscCore.complete_load` / the sync interfaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.syncpoint import SyncOp
from ..isa.encoding import Instruction
from ..isa.spec import Op, to_signed16, to_u16


class EffectKind(enum.Enum):
    """What an executed instruction asks of the platform."""

    NONE = "none"
    LOAD = "load"
    STORE = "store"
    SYNC = "sync"
    SLEEP = "sleep"
    HALT = "halt"


@dataclass(frozen=True)
class Effect:
    """Platform-visible side effect of one instruction.

    Attributes:
        kind: effect category.
        address: logical DM address (LOAD/STORE).
        value: store data (STORE).
        rd: destination register (LOAD).
        sync_op: which sync instruction was issued (SYNC).
        sync_point: sync-point literal (SYNC).
    """

    kind: EffectKind
    address: int = 0
    value: int = 0
    rd: int = 0
    sync_op: SyncOp | None = None
    sync_point: int = 0


_NO_EFFECT = Effect(EffectKind.NONE)

_SYNC_OPS = {
    Op.SINC: SyncOp.SINC,
    Op.SDEC: SyncOp.SDEC,
    Op.SNOP: SyncOp.SNOP,
}


@dataclass
class CoreStats:
    """Per-core activity counters (inputs to the power model).

    Attributes:
        instructions: instructions retired.
        active_cycles: cycles with the clock running (issue + stall +
            multi-cycle busy).
        gated_cycles: cycles spent clock-gated by the synchronizer.
        halted_cycles: cycles after ``halt``.
        fetch_stalls: cycles lost to IM bank conflicts.
        mem_stalls: cycles lost to DM bank conflicts.
        busy_cycles: extra cycles of multi-cycle instructions and
            branch flushes.
        sync_issued: synchronization-ISE instructions retired
            (including ``sleep``).
        loads: data-memory loads retired.
        stores: data-memory stores retired.
        taken_branches: taken branches and jumps.
    """

    instructions: int = 0
    active_cycles: int = 0
    gated_cycles: int = 0
    halted_cycles: int = 0
    fetch_stalls: int = 0
    mem_stalls: int = 0
    busy_cycles: int = 0
    sync_issued: int = 0
    loads: int = 0
    stores: int = 0
    taken_branches: int = 0


class RiscCore:
    """One computing core.

    The platform drives the core with this per-cycle contract:

    1. if ``halted``/``gated`` — idle; account the cycle;
    2. if ``busy_cycles_left`` — burn one busy cycle;
    3. if a load/store is pending — re-present it to the crossbar;
    4. otherwise fetch at ``pc`` (subject to IM arbitration) and call
       :meth:`execute`.
    """

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self.regs = [0] * 8
        self.pc = 0
        self.halted = False
        self.gated = False
        self.busy_cycles_left = 0
        self.pending_effect: Effect | None = None
        self.stats = CoreStats()

    # ------------------------------------------------------------------
    # Register file
    # ------------------------------------------------------------------

    def read_reg(self, index: int) -> int:
        """Read a register (r0 reads as zero)."""
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        """Write a register (writes to r0 are discarded)."""
        if index != 0:
            self.regs[index] = to_u16(value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, instr: Instruction) -> Effect:
        """Execute one fetched instruction; returns its platform effect.

        Updates ``pc`` and timing state.  For loads/stores the returned
        effect must be granted by the platform (possibly after stalls)
        before the core may fetch again.
        """
        self.stats.instructions += 1
        op = instr.op
        next_pc = self.pc + 1
        effect = _NO_EFFECT

        if op is Op.ADD:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) + self.read_reg(instr.rb))
        elif op is Op.SUB:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) - self.read_reg(instr.rb))
        elif op is Op.AND:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) & self.read_reg(instr.rb))
        elif op is Op.OR:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) | self.read_reg(instr.rb))
        elif op is Op.XOR:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) ^ self.read_reg(instr.rb))
        elif op is Op.SLL:
            shift = self.read_reg(instr.rb) & 0xF
            self.write_reg(instr.rd, self.read_reg(instr.ra) << shift)
        elif op is Op.SRL:
            shift = self.read_reg(instr.rb) & 0xF
            self.write_reg(instr.rd, self.read_reg(instr.ra) >> shift)
        elif op is Op.SRA:
            shift = self.read_reg(instr.rb) & 0xF
            self.write_reg(instr.rd,
                           to_signed16(self.read_reg(instr.ra)) >> shift)
        elif op is Op.SLT:
            self.write_reg(instr.rd,
                           int(to_signed16(self.read_reg(instr.ra))
                               < to_signed16(self.read_reg(instr.rb))))
        elif op is Op.SLTU:
            self.write_reg(instr.rd,
                           int(self.read_reg(instr.ra)
                               < self.read_reg(instr.rb)))
        elif op is Op.MUL:
            product = (to_signed16(self.read_reg(instr.ra))
                       * to_signed16(self.read_reg(instr.rb)))
            self.write_reg(instr.rd, product)
            self.busy_cycles_left += 1
        elif op is Op.MULH:
            product = (to_signed16(self.read_reg(instr.ra))
                       * to_signed16(self.read_reg(instr.rb)))
            self.write_reg(instr.rd, product >> 16)
            self.busy_cycles_left += 1
        elif op is Op.ADDI:
            self.write_reg(instr.rd, self.read_reg(instr.ra) + instr.imm)
        elif op is Op.ANDI:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) & to_u16(instr.imm))
        elif op is Op.ORI:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) | to_u16(instr.imm))
        elif op is Op.XORI:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) ^ to_u16(instr.imm))
        elif op is Op.SLLI:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) << (instr.imm & 0xF))
        elif op is Op.SRLI:
            self.write_reg(instr.rd,
                           self.read_reg(instr.ra) >> (instr.imm & 0xF))
        elif op is Op.SRAI:
            self.write_reg(instr.rd,
                           to_signed16(self.read_reg(instr.ra))
                           >> (instr.imm & 0xF))
        elif op is Op.SLTI:
            self.write_reg(instr.rd,
                           int(to_signed16(self.read_reg(instr.ra))
                               < instr.imm))
        elif op is Op.LUI:
            self.write_reg(instr.rd, (instr.imm & 0xFF) << 8)
        elif op is Op.LW:
            address = to_u16(self.read_reg(instr.ra) + instr.imm)
            effect = Effect(EffectKind.LOAD, address=address, rd=instr.rd)
            self.stats.loads += 1
        elif op is Op.SW:
            address = to_u16(self.read_reg(instr.ra) + instr.imm)
            effect = Effect(EffectKind.STORE, address=address,
                            value=self.read_reg(instr.rb))
            self.stats.stores += 1
        elif op is Op.BEQ:
            if self.read_reg(instr.ra) == self.read_reg(instr.rb):
                next_pc = self._take_branch(instr)
        elif op is Op.BNE:
            if self.read_reg(instr.ra) != self.read_reg(instr.rb):
                next_pc = self._take_branch(instr)
        elif op is Op.BLT:
            if (to_signed16(self.read_reg(instr.ra))
                    < to_signed16(self.read_reg(instr.rb))):
                next_pc = self._take_branch(instr)
        elif op is Op.BGE:
            if (to_signed16(self.read_reg(instr.ra))
                    >= to_signed16(self.read_reg(instr.rb))):
                next_pc = self._take_branch(instr)
        elif op is Op.BLTU:
            if self.read_reg(instr.ra) < self.read_reg(instr.rb):
                next_pc = self._take_branch(instr)
        elif op is Op.BGEU:
            if self.read_reg(instr.ra) >= self.read_reg(instr.rb):
                next_pc = self._take_branch(instr)
        elif op is Op.JAL:
            self.write_reg(instr.rd, self.pc + 1)
            next_pc = instr.imm
            self.busy_cycles_left += 1
            self.stats.taken_branches += 1
        elif op is Op.JALR:
            target = to_u16(self.read_reg(instr.ra) + instr.imm)
            self.write_reg(instr.rd, self.pc + 1)
            next_pc = target
            self.busy_cycles_left += 1
            self.stats.taken_branches += 1
        elif op in _SYNC_OPS:
            effect = Effect(EffectKind.SYNC, sync_op=_SYNC_OPS[op],
                            sync_point=instr.imm)
            self.stats.sync_issued += 1
        elif op is Op.SLEEP:
            effect = Effect(EffectKind.SLEEP)
            self.stats.sync_issued += 1
        elif op is Op.NOP:
            pass
        elif op is Op.HALT:
            effect = Effect(EffectKind.HALT)
        else:  # pragma: no cover - Op enum is exhaustive
            raise NotImplementedError(f"unimplemented opcode {op!r}")

        self.pc = next_pc & 0x7FFF
        return effect

    def _take_branch(self, instr: Instruction) -> int:
        """Compute a taken-branch target and charge the flush cycle."""
        self.busy_cycles_left += 1
        self.stats.taken_branches += 1
        return self.pc + 1 + instr.imm

    # ------------------------------------------------------------------
    # Platform callbacks
    # ------------------------------------------------------------------

    def complete_load(self, effect: Effect, value: int) -> None:
        """Deliver granted load data to the destination register."""
        self.write_reg(effect.rd, value)

    def reset(self, entry: int) -> None:
        """Power-on reset at ``entry``."""
        self.regs = [0] * 8
        self.pc = entry & 0x7FFF
        self.halted = False
        self.gated = False
        self.busy_cycles_left = 0
        self.pending_effect = None
        self.stats = CoreStats()
