"""Banked instruction and data memories with per-bank power gating.

The paper requires that "IM and DM must be divided into several banks so
that they can be read/written independently and powered-off if not used
in order to save energy" (Sec. III-A, property 1).  Each
:class:`MemoryBank` tracks its power state and access counts; the power
model charges dynamic energy per access and leakage per powered cycle.
"""

from __future__ import annotations

from dataclasses import dataclass


class MemoryFault(Exception):
    """An access touched a powered-off bank or an out-of-range address."""


class MemoryBank:
    """One independently powered memory bank.

    Args:
        words: bank capacity in words.
        word_mask: bit mask of a stored word (0xFFFF for DM, 0xFFFFFF
            for IM).
        name: diagnostic name used in fault messages.
    """

    def __init__(self, words: int, word_mask: int, name: str = "bank") -> None:
        self.words = words
        self.word_mask = word_mask
        self.name = name
        self.data = [0] * words
        self.powered = True
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> int:
        """Read one word; faults if the bank is off or out of range."""
        self._check(index)
        self.reads += 1
        return self.data[index]

    def write(self, index: int, value: int) -> None:
        """Write one word; faults if the bank is off or out of range."""
        self._check(index)
        self.writes += 1
        self.data[index] = value & self.word_mask

    def peek(self, index: int) -> int:
        """Debug read: no counters, no power check."""
        return self.data[index]

    def poke(self, index: int, value: int) -> None:
        """Debug/loader write: no counters, but the bank must be on."""
        if not self.powered:
            raise MemoryFault(f"{self.name}: loading into powered-off bank")
        self.data[index] = value & self.word_mask

    @property
    def accesses(self) -> int:
        """Total dynamic accesses (reads + writes)."""
        return self.reads + self.writes

    def power_off(self) -> None:
        """Gate the bank; later accesses fault, contents are retained.

        (A real SRAM would lose or retain contents depending on the
        retention mode; the paper powers off only *unused* banks, so
        content semantics never matter.)
        """
        self.powered = False

    def power_on(self) -> None:
        """Un-gate the bank."""
        self.powered = True

    def _check(self, index: int) -> None:
        if not self.powered:
            raise MemoryFault(f"{self.name}: access while powered off")
        if not 0 <= index < self.words:
            raise MemoryFault(
                f"{self.name}: index {index} out of range [0, {self.words})")


@dataclass(frozen=True)
class MemoryActivity:
    """Aggregate activity snapshot of a banked memory.

    Attributes:
        reads: total read accesses across banks.
        writes: total write accesses across banks.
        powered_banks: number of banks currently powered.
        per_bank_accesses: access count per bank, in bank order.
    """

    reads: int
    writes: int
    powered_banks: int
    per_bank_accesses: tuple[int, ...]

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.reads + self.writes


class BankedMemory:
    """A set of equally sized banks forming one memory.

    Addressing policy (which bank serves which address) is *not* decided
    here — it belongs to the interconnect/ATU.  This class only owns
    storage, power state and counters.
    """

    def __init__(self, banks: int, words_per_bank: int, word_mask: int,
                 name: str = "mem") -> None:
        self.name = name
        self.words_per_bank = words_per_bank
        self.banks = [
            MemoryBank(words_per_bank, word_mask, name=f"{name}[{i}]")
            for i in range(banks)
        ]

    def __len__(self) -> int:
        return len(self.banks)

    def bank(self, index: int) -> MemoryBank:
        """Bank object at ``index``."""
        return self.banks[index]

    def read(self, bank: int, index: int) -> int:
        """Counted read of ``index`` within ``bank``."""
        return self.banks[bank].read(index)

    def write(self, bank: int, index: int, value: int) -> None:
        """Counted write of ``index`` within ``bank``."""
        self.banks[bank].write(index, value)

    def power_off_unused(self, used_banks: set[int]) -> None:
        """Power off every bank not listed in ``used_banks``."""
        for number, bank in enumerate(self.banks):
            if number in used_banks:
                bank.power_on()
            else:
                bank.power_off()

    @property
    def powered_banks(self) -> int:
        """Number of banks currently powered."""
        return sum(1 for bank in self.banks if bank.powered)

    def activity(self) -> MemoryActivity:
        """Aggregate activity snapshot (for the power model)."""
        return MemoryActivity(
            reads=sum(bank.reads for bank in self.banks),
            writes=sum(bank.writes for bank in self.banks),
            powered_banks=self.powered_banks,
            per_bank_accesses=tuple(bank.accesses for bank in self.banks),
        )

    def reset_counters(self) -> None:
        """Zero all access counters (power state is kept)."""
        for bank in self.banks:
            bank.reads = 0
            bank.writes = 0
