"""Calibration gate: analytic scores cross-checked against simulate().

The analytic model claims to be a closed-form reduction of the tick
loop — exact up to float associativity.  This module keeps that claim
honest: :func:`calibrate` samples placements of a set of applications
(the policy start points plus seeded mutation walks), scores each
sample through *both* tiers, and reports the relative-error
percentiles.  The report is deterministic (seeded sampling, sorted
aggregation), so it can ride inside byte-stable artifacts, and
:meth:`CalibrationReport.within` turns it into a pass/fail accuracy
gate for tests and CI.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..apps.mapping import MappingError
from ..apps.phases import AppSpec
from ..eval.aggregates import summary_stats
from ..gen.explorer import repair_app
from ..gen.policies import get_policy
from ..isa.layout import ImGeometry
from ..search.anneal import START_POLICIES
from ..search.cost import ORACLE_DURATION_S, get_oracle
from ..search.space import (
    Candidate,
    candidate_from_plan,
    plan_from_candidate,
    propose,
)
from .model import AnalyticModel

#: Default sampled placements per application.
CALIBRATE_SAMPLES = 6

#: Relative error the accuracy gate tolerates by default.  The model
#: is algebraically exact; anything beyond float-accumulation noise
#: means the reduction drifted from the simulator.
CALIBRATE_TOLERANCE = 1e-6


@dataclass(frozen=True)
class CalibrationReport:
    """Accuracy of the analytic tier against the exact tier.

    Attributes:
        kind: cost kind both tiers scored.
        duration_s: simulated seconds per exact evaluation.
        num_cores: provisioned platform width.
        apps: applications sampled.
        samples: total (analytic, exact) score pairs compared.
        errors: percentile summary of the relative errors
            ``|analytic - exact| / exact`` (see
            :func:`repro.eval.aggregates.summary_stats`).
    """

    kind: str
    duration_s: float
    num_cores: int
    apps: int
    samples: int
    errors: dict[str, float]

    def within(self, tolerance: float = CALIBRATE_TOLERANCE) -> bool:
        """The accuracy gate: worst relative error under tolerance."""
        if not self.samples:
            return False
        return self.errors["max"] <= tolerance


def sample_candidates(app: AppSpec, num_cores: int = 8,
                      samples: int = CALIBRATE_SAMPLES, seed: int = 0,
                      geometry: ImGeometry | None = None
                      ) -> list[Candidate]:
    """Sampled placements of one (already repaired) application.

    The policy start points come first (deduplicated, policy order),
    then seeded mutation walks extend the set until ``samples``
    distinct candidates exist (or the walk stalls).  Deterministic in
    ``(app identity, parameters, seed)``.
    """
    geom = geometry or ImGeometry()
    found: list[Candidate] = []
    seen: set[Candidate] = set()
    for name in START_POLICIES:
        try:
            plan = get_policy(name).map(app, num_cores, geom)
        except MappingError:
            continue
        candidate = candidate_from_plan(plan)
        if candidate not in seen:
            seen.add(candidate)
            found.append(candidate)
    if not found:
        return []
    rng = random.Random(seed)
    current = found[0]
    stalls = 0
    while len(found) < samples and stalls < 64:
        neighbour = propose(app, current, rng, num_cores, geom)
        if neighbour is None:
            stalls += 1
            continue
        current = neighbour
        if neighbour in seen:
            stalls += 1
            continue
        stalls = 0
        seen.add(neighbour)
        found.append(neighbour)
    return found[:samples]


def calibrate(apps: Sequence[AppSpec], kind: str = "power",
              duration_s: float = ORACLE_DURATION_S, num_cores: int = 8,
              samples: int = CALIBRATE_SAMPLES, seed: int = 0,
              geometry: ImGeometry | None = None) -> CalibrationReport:
    """Cross-check analytic scores against ``simulate()`` on samples.

    For every application a small set of placements is sampled
    (:func:`sample_candidates`), scored by the vectorised analytic
    model *and* by the exact cost oracle, and the relative errors
    ``|analytic - exact| / exact`` are aggregated into percentiles.
    This is the accuracy gate of the two-tier oracle: a report whose
    :meth:`CalibrationReport.within` fails means the closed-form
    reduction no longer matches the simulator and screening results
    cannot be trusted.

    Args:
        apps: applications to sample (repaired internally when they
            need more cores than the platform has).
        kind: cost kind to compare, one of
            :data:`repro.search.cost.ORACLE_KINDS`.
        duration_s: simulated seconds per exact evaluation.
        num_cores: provisioned platform width.
        samples: sampled placements per application.
        seed: sampling seed (mixed per app by position).
        geometry: IM geometry (platform default when omitted).

    Returns:
        The deterministic calibration report; apps no policy can
        place contribute no samples.

    Raises:
        ValueError: unknown cost kind or non-positive duration.
    """
    oracle = get_oracle(kind, duration_s)
    errors: list[float] = []
    sampled_apps = 0
    for position, app in enumerate(apps):
        candidate_app, _ = repair_app(app, num_cores)
        candidates = sample_candidates(
            candidate_app, num_cores=num_cores, samples=samples,
            seed=seed + position, geometry=geometry)
        if not candidates:
            continue
        sampled_apps += 1
        model = AnalyticModel(candidate_app, num_cores=num_cores,
                              kind=kind, duration_s=duration_s,
                              geometry=geometry)
        scores = model.score(candidates)
        for index, candidate in enumerate(candidates):
            plan = plan_from_candidate(candidate_app, candidate)
            exact, _ = oracle.evaluate(candidate_app, plan, num_cores)
            analytic = float(scores.cost[index])
            errors.append(abs(analytic - exact) / exact
                          if exact > 0 else abs(analytic))
    return CalibrationReport(
        kind=kind,
        duration_s=duration_s,
        num_cores=num_cores,
        apps=sampled_apps,
        samples=len(errors),
        errors=summary_stats(errors),
    )


def calibration_payload(report: CalibrationReport) -> dict:
    """JSON-ready form of a calibration report (artifact block)."""
    return {
        "kind": report.kind,
        "duration_s": report.duration_s,
        "num_cores": report.num_cores,
        "apps": report.apps,
        "samples": report.samples,
        "errors": dict(report.errors),
    }
