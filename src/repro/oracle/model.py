"""Vectorised analytic cost model over populations of candidates.

The behavioural simulator's tick loop is closed-form reducible for
multi-core placements: streaming phases always drain within their tick
(the VFS clock is sized for the busiest core, so per-replica capacity
covers per-replica load by construction) and triggered phases drain a
known work batch per abnormal beat.  Every activity counter the power
model consumes therefore splits into

* a **base** that depends only on ``(application, duration)`` — the
  per-replica executed/sync/data-access totals of the phases — and
* a **candidate part** that depends only on the chosen clock (the
  per-core summed streaming load), the distinct cores and the distinct
  IM banks of the placement.

:class:`AnalyticModel` precomputes the base once and scores whole
populations of :class:`~repro.search.space.Candidate` mappings per
call with batched numpy arithmetic: an ``N x num_cores`` scatter-add
for the clock floor, a ``searchsorted`` over the process fmax grid for
the voltage, and the :func:`repro.power.energy.compute_power` formulas
replicated element-wise.  The reduction is *exact up to float
associativity* — :mod:`repro.oracle.calibrate` keeps that claim
honest against ``simulate()`` — and everything is a pure function of
its inputs, so populations score byte-deterministically across
processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..apps.mapping import distinct_sections
from ..apps.phases import AppSpec, Trigger
from ..isa.layout import DmGeometry, ImGeometry
from ..power.components import DEFAULT_ENERGY, EnergyParams
from ..power.energy import PowerReport
from ..power.process import DEFAULT_PROCESS, ProcessModel
from ..power.vfs import MIN_SYSTEM_CLOCK_MHZ, OperatingPoint
from ..search.cost import (
    COMPOSITE_CLOCK_WEIGHT_UW_PER_MHZ,
    ORACLE_ABNORMAL_RATIO,
    ORACLE_DURATION_S,
    ORACLE_KINDS,
)
from ..search.space import Candidate
from ..sysc.engine import (
    SYNC_WRITE_FRACTION,
    BeatEvent,
    uniform_schedule,
)


@dataclass(frozen=True)
class PopulationScores:
    """Analytic scores of one scored population (parallel arrays).

    Attributes:
        kind: cost kind the ``cost`` array minimises.
        cost: scalar cost per candidate (the screen ranking key).
        power_uw: average platform power per candidate.
        clock_mhz: VFS operating clock per candidate.
        voltage: supply voltage per candidate.
        required_mhz: clock requirement before the platform floor.
        duty_cycle: executed cycles / provisioned core cycles.
        sync_overhead: executed sync ops / executed cycles.
        code_overhead: inserted sync words / total code words
            (placement-independent, one scalar for the population).
        active_cores: distinct cores per candidate.
        im_banks: distinct IM banks per candidate.
        run_s: exact simulated span (``ticks / fs``) the power figures
            average over — the duration a matching ``simulate()`` run
            reports on its :class:`~repro.power.energy.PowerReport`.
        categories_uw: per-category power arrays in
            ``compute_power``'s category order (one array per
            category, one entry per candidate).
    """

    kind: str
    cost: np.ndarray
    power_uw: np.ndarray
    clock_mhz: np.ndarray
    voltage: np.ndarray
    required_mhz: np.ndarray
    duty_cycle: np.ndarray
    sync_overhead: np.ndarray
    code_overhead: float
    active_cores: np.ndarray
    im_banks: np.ndarray
    run_s: float = 0.0
    categories_uw: dict[str, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.cost)

    def power_report(self, index: int) -> PowerReport:
        """The exact-oracle-shaped power report of one candidate.

        Categories come out in ``compute_power``'s insertion order, so
        ``total_uw`` sums in the same float order as the exact path.
        """
        if self.categories_uw is None:
            raise ValueError("population was scored without categories")
        return PowerReport(
            operating_point=OperatingPoint(
                frequency_mhz=float(self.clock_mhz[index]),
                voltage=float(self.voltage[index])),
            duration_s=self.run_s,
            categories={name: float(values[index])
                        for name, values in self.categories_uw.items()},
        )

    def metrics(self, index: int) -> dict:
        """The metric mapping of one candidate (exact-oracle shape)."""
        return {
            "power_uw": float(self.power_uw[index]),
            "clock_mhz": float(self.clock_mhz[index]),
            "voltage": float(self.voltage[index]),
            "required_mhz": float(self.required_mhz[index]),
            "duty_cycle": float(self.duty_cycle[index]),
            "sync_overhead": float(self.sync_overhead[index]),
            "code_overhead": float(self.code_overhead),
            "im_banks": int(self.im_banks[index]),
            "active_cores": int(self.active_cores[index]),
        }


def _code_overhead(app: AppSpec) -> float:
    """Table I "Code Overhead" of any multi-core placement of ``app``.

    Mirrors :meth:`repro.apps.mapping.MappingPlan.code_overhead`:
    phases sharing the same section tuple carry the same inserted
    instructions, counted once.  Placement-independent.
    """
    by_sections: dict[tuple[str, ...], int] = {}
    for phase in app.phases:
        key = tuple(section.name for section in phase.sections)
        by_sections[key] = phase.sync_code_words
    sync_words = sum(by_sections.values())
    total = (app.runtime_words
             + sum(s.words for s in distinct_sections(app))
             + sync_words)
    return sync_words / total if total else 0.0


@dataclass(frozen=True)
class _TriggeredPhase:
    """Precomputed base of one ON_ABNORMAL phase."""

    work_per_beat: float  # cycles + sync, over the whole beat span
    replicas: int
    dm_rate: float
    merge_weight: float  # alignment * (replicas - 1), 0 if no group
    shared_read_fraction: float


class AnalyticModel:
    """Closed-form reduction of ``simulate()`` for one application.

    Precomputes the per-``(app, duration)`` activity base in the
    constructor (one pass over the phases plus one beat schedule — no
    tick loop), then scores arbitrarily many candidates per
    :meth:`score` call with vectorised numpy arithmetic.

    Args:
        app: the (already repaired) application being placed.
        num_cores: provisioned platform width.
        kind: cost kind, one of
            :data:`repro.search.cost.ORACLE_KINDS`.
        duration_s: simulated seconds the scores correspond to.
        geometry: IM geometry (platform default when omitted).
        floor_mhz: minimum system clock of the VFS planner.
        energy: per-component energies at the reference voltage.
        process: VFS process model.
        abnormal_ratio: pathological-beat ratio applied when the app
            has triggered phases (the exact oracle's convention).
        schedule: explicit beat schedule to reduce instead of the
            synthesised uniform one — fleet nodes carry their own
            bpm-specific schedules; only the abnormal beats matter to
            the reduction, exactly as in ``simulate()``.

    Raises:
        ValueError: unknown cost kind or non-positive duration.
    """

    def __init__(self, app: AppSpec, num_cores: int = 8,
                 kind: str = "power",
                 duration_s: float = ORACLE_DURATION_S,
                 geometry: ImGeometry | None = None,
                 floor_mhz: float = MIN_SYSTEM_CLOCK_MHZ,
                 energy: EnergyParams = DEFAULT_ENERGY,
                 process: ProcessModel = DEFAULT_PROCESS,
                 abnormal_ratio: float = ORACLE_ABNORMAL_RATIO,
                 schedule: "Sequence[BeatEvent] | None" = None) -> None:
        if kind not in ORACLE_KINDS:
            raise ValueError(
                f"unknown cost oracle {kind!r}; choose from "
                f"{list(ORACLE_KINDS)}")
        if duration_s <= 0.0:
            raise ValueError("oracle duration must be positive")
        app.validate()
        self.app = app
        self.num_cores = num_cores
        self.kind = kind
        self.duration_s = duration_s
        self.geometry = geometry or ImGeometry()
        self.floor_mhz = floor_mhz
        self.energy = energy
        self.process = process

        fs = app.fs
        self.ticks = int(round(duration_s * fs))
        self._run_s = self.ticks / fs  # cycles / cycles_per_second
        self._fs = fs
        self._code_overhead = _code_overhead(app)
        self._dm_banks_on = DmGeometry().banks

        # Canonical slot order: (phase, replica) pairs, app phase
        # order, replicas ascending — the Candidate convention.
        self._slot_loads: list[float] = []
        self._section_names = tuple(sorted(
            section.name for section in distinct_sections(app)))

        if schedule is None:
            has_triggered = any(phase.trigger is Trigger.ON_ABNORMAL
                                for phase in app.phases)
            ratio = abnormal_ratio if has_triggered else 0.0
            schedule = uniform_schedule(duration_s, fs,
                                        abnormal_ratio=ratio)
        beats_by_tick: dict[int, int] = {}
        for event in schedule:
            if event.abnormal and 0 <= event.sample < self.ticks:
                beats_by_tick[event.sample] = \
                    beats_by_tick.get(event.sample, 0) + 1
        self._beats = sorted(beats_by_tick.items())
        arrivals = sum(count for _, count in self._beats)

        # Candidate-independent activity base (streaming phases drain
        # every tick; triggered sync ops are counted at enqueue).
        exec_stream = 0.0
        sync_total = 0.0
        dm_stream = 0.0
        im_merged = 0.0
        dm_merged = 0.0
        span = app.beat_span_samples
        self._triggered: list[_TriggeredPhase] = []
        for phase in app.phases:
            grouped = phase.replicas > 1 and phase.lockstep_alignment > 0
            if phase.trigger is Trigger.STREAMING:
                load = phase.cycles_per_sample + phase.sync_ops_per_sample
                self._slot_loads.extend(
                    [load * fs / 1e6] * phase.replicas)
                member = load * self.ticks
                exec_stream += phase.replicas * member
                sync_total += (phase.replicas
                               * phase.sync_ops_per_sample * self.ticks)
                dm_stream += phase.replicas * member * phase.dm_access_rate
                if grouped and load > 0:
                    weight = (phase.lockstep_alignment
                              * (phase.replicas - 1))
                    im_merged += weight * member
                    dm_merged += (weight * member * phase.dm_access_rate
                                  * phase.shared_read_fraction)
            else:
                self._slot_loads.extend([0.0] * phase.replicas)
                work = (phase.cycles_per_sample
                        + phase.sync_ops_per_sample) * span
                sync_total += (phase.replicas * phase.sync_ops_per_sample
                               * span * arrivals)
                self._triggered.append(_TriggeredPhase(
                    work_per_beat=work,
                    replicas=phase.replicas,
                    dm_rate=phase.dm_access_rate,
                    merge_weight=(phase.lockstep_alignment
                                  * (phase.replicas - 1))
                    if grouped else 0.0,
                    shared_read_fraction=phase.shared_read_fraction,
                ))
        self._exec_stream = exec_stream
        self._sync_total = sync_total
        self._dm_stream = dm_stream
        self._im_merged_stream = im_merged
        self._dm_merged_stream = dm_merged

        # fmax grid as arrays for the vectorised voltage lookup.
        self._grid_fmax = np.array(
            [fmax for _, fmax in process.fmax_table])
        self._grid_volts = np.array(
            [volt for volt, _ in process.fmax_table])

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _as_arrays(self, candidates) -> tuple[np.ndarray, np.ndarray]:
        """(N, slots) core ids and (N, sections) bank ids, validated."""
        slots = len(self._slot_loads)
        cores = np.empty((len(candidates), slots), dtype=np.int64)
        banks = np.empty((len(candidates), len(self._section_names)),
                         dtype=np.int64)
        for row, candidate in enumerate(candidates):
            if len(candidate.cores) != slots:
                raise ValueError(
                    f"candidate has {len(candidate.cores)} core slots; "
                    f"{self.app.name} needs {slots}")
            names = tuple(name for name, _ in candidate.section_banks)
            if names != self._section_names:
                raise ValueError(
                    f"candidate section set {names} does not match "
                    f"{self._section_names}")
            cores[row] = candidate.cores
            banks[row] = [bank for _, bank in candidate.section_banks]
        if cores.size and (cores.min() < 0
                           or cores.max() >= self.num_cores):
            raise ValueError(
                f"candidate uses cores outside 0..{self.num_cores - 1}")
        if banks.size and (banks.min() < 0
                           or banks.max() >= self.geometry.banks):
            raise ValueError(
                f"candidate uses IM banks outside "
                f"0..{self.geometry.banks - 1}")
        return cores, banks

    def _triggered_executed(
        self, capacity: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(executed, dm, im_merged, dm_merged) parts per candidate.

        Replays the arrival queue of every triggered phase at *beat*
        granularity: between arrivals a queue drains ``min(queue,
        gap_ticks * capacity)`` cycles, exactly as the tick loop
        would, so the per-member executed total is exact even when the
        drain is cut short by the end of the run.
        """
        n = len(capacity)
        executed = np.zeros(n)
        dm = np.zeros(n)
        im_merged = np.zeros(n)
        dm_merged = np.zeros(n)
        if not self._beats:
            return executed, dm, im_merged, dm_merged
        ticks = [tick for tick, _ in self._beats]
        counts = [count for _, count in self._beats]
        gaps = [next_tick - tick for tick, next_tick
                in zip(ticks, ticks[1:] + [self.ticks])]
        for phase in self._triggered:
            queue = np.zeros(n)
            member = np.zeros(n)
            for count, gap in zip(counts, gaps):
                queue += count * phase.work_per_beat
                drain = np.minimum(queue, gap * capacity)
                member += drain
                queue -= drain
            executed += phase.replicas * member
            dm += phase.replicas * member * phase.dm_rate
            if phase.merge_weight > 0:
                im_merged += phase.merge_weight * member
                dm_merged += (phase.merge_weight * member * phase.dm_rate
                              * phase.shared_read_fraction)
        return executed, dm, im_merged, dm_merged

    def score(self, candidates) -> PopulationScores:
        """Score a whole population of candidates in one call.

        Args:
            candidates: a sequence of feasible
                :class:`~repro.search.space.Candidate` mappings of
                this model's application.

        Returns:
            Parallel score arrays, one entry per candidate, in input
            order.

        Raises:
            ValueError: empty population, or a candidate whose slots,
                sections, cores or banks do not fit this application
                and platform.
        """
        if not len(candidates):
            raise ValueError("cannot score an empty population")
        cores, banks = self._as_arrays(candidates)
        n = len(candidates)
        rows = np.arange(n)

        # Clock floor: per-core summed streaming load, slot by slot in
        # the same order plan_required_mhz accumulates it.
        loads = np.zeros((n, self.num_cores))
        for slot, load in enumerate(self._slot_loads):
            if load > 0.0:
                loads[rows, cores[:, slot]] += load
        required = loads.max(axis=1) if self.num_cores else np.zeros(n)
        clock = np.maximum(required, self.floor_mhz)

        # Voltage: smallest grid voltage whose fmax reaches the clock.
        grid = np.searchsorted(self._grid_fmax, clock - 1e-12,
                               side="left")
        if grid.max() >= len(self._grid_fmax):
            worst = float(clock.max())
            raise ValueError(
                f"no grid voltage reaches {worst} MHz "
                f"(max {self._grid_fmax[-1]} MHz)")
        voltage = self._grid_volts[grid]

        capacity = clock * 1e6 / self._fs  # cycles per tick
        wall = self.ticks * capacity
        trig_exec, trig_dm, trig_im_merged, trig_dm_merged = \
            self._triggered_executed(capacity)

        total_executed = self._exec_stream + trig_exec
        total_dm = self._dm_stream + trig_dm
        sync_writes = self._sync_total * SYNC_WRITE_FRACTION
        im_accesses = (total_executed
                       - (self._im_merged_stream + trig_im_merged))
        dm_accesses = (total_dm
                       - (self._dm_merged_stream + trig_dm_merged)
                       + sync_writes)
        grants = total_executed + total_dm + sync_writes

        # Footprint: distinct cores and distinct IM banks.
        presence = np.zeros((n, self.num_cores), dtype=bool)
        presence[rows[:, None], cores] = True
        active_cores = presence.sum(axis=1)
        bank_presence = np.zeros((n, self.geometry.banks), dtype=bool)
        bank_presence[rows[:, None], banks] = True
        im_banks = bank_presence.sum(axis=1)

        # compute_power, element-wise (same expressions, same order).
        params = self.energy
        process = self.process
        dyn = (voltage / process.reference_voltage) \
            ** process.dynamic_exponent
        leak = (voltage / process.reference_voltage) \
            ** process.leakage_exponent
        cores_pj = total_executed * params.core_active_pj
        clock_pj = (wall * (params.clock_root_base_pj
                            + params.clock_root_per_core_pj
                            * self.num_cores)
                    + total_executed * params.clock_branch_pj)
        im_pj = im_accesses * params.im_access_pj
        dm_pj = dm_accesses * params.dm_access_pj
        xbar_pj = grants * params.xbar_grant_pj
        sync_pj = (self._sync_total * params.sync_op_pj
                   + wall * params.sync_idle_pj)

        def to_uw(pico_joules):
            return pico_joules * dyn / self._run_s * 1e-6

        leakage_uw = leak * (
            im_banks * params.leak_im_bank_uw
            + self._dm_banks_on * params.leak_dm_bank_uw
            + active_cores * params.leak_core_uw
            + params.leak_xbar_uw)
        # Per-category arrays in compute_power's insertion order, so a
        # report rebuilt from them sums total_uw in the same float
        # order as the exact path.
        categories_uw = {
            "cores_logic": to_uw(cores_pj),
            "clock_tree": to_uw(clock_pj),
            "instr_mem": to_uw(im_pj),
            "data_mem": to_uw(dm_pj),
            "interconnect": to_uw(xbar_pj),
            "synchronizer": to_uw(sync_pj),
            "leakage": np.asarray(leakage_uw),
        }
        power_uw = (to_uw(cores_pj) + to_uw(clock_pj) + to_uw(im_pj)
                    + to_uw(dm_pj) + to_uw(xbar_pj) + to_uw(sync_pj)
                    + leakage_uw)

        provisioned = wall * active_cores
        duty = np.divide(total_executed, provisioned,
                         out=np.zeros(n), where=provisioned > 0)
        sync_overhead = np.divide(
            np.full(n, self._sync_total), total_executed,
            out=np.zeros(n), where=total_executed > 0)

        if self.kind == "clock":
            cost = clock.copy()
        elif self.kind == "power":
            cost = power_uw.copy()
        else:
            cost = (power_uw
                    + COMPOSITE_CLOCK_WEIGHT_UW_PER_MHZ * clock)
        return PopulationScores(
            kind=self.kind,
            cost=cost,
            power_uw=power_uw,
            clock_mhz=clock,
            voltage=voltage,
            required_mhz=required,
            duty_cycle=duty,
            sync_overhead=sync_overhead,
            code_overhead=self._code_overhead,
            active_cores=active_cores,
            im_banks=im_banks,
            run_s=self._run_s,
            categories_uw=categories_uw,
        )

    def score_one(self, candidate: Candidate) -> float:
        """The scalar analytic cost of one candidate."""
        return float(self.score([candidate]).cost[0])


def score_population(app: AppSpec, candidates,
                     num_cores: int = 8, kind: str = "power",
                     duration_s: float = ORACLE_DURATION_S,
                     geometry: ImGeometry | None = None,
                     floor_mhz: float = MIN_SYSTEM_CLOCK_MHZ
                     ) -> PopulationScores:
    """Score a population of candidate mappings analytically.

    One-shot convenience over :class:`AnalyticModel` — builds the
    model (one pass over the phases, no simulation) and scores the
    whole population in a single vectorised call.  Use the class
    directly when scoring several populations of the same application
    so the activity base is computed once.

    Args:
        app: the application the candidates place.
        candidates: feasible :class:`~repro.search.space.Candidate`
            mappings (see :func:`repro.search.space.violations`).
        num_cores: provisioned platform width.
        kind: cost kind, one of
            :data:`repro.search.cost.ORACLE_KINDS`.
        duration_s: simulated seconds the scores correspond to.
        geometry: IM geometry (platform default when omitted).
        floor_mhz: minimum system clock of the VFS planner.

    Returns:
        :class:`PopulationScores` — parallel arrays in input order;
        ``scores.cost`` is the ranking key of the requested kind.

    Raises:
        ValueError: bad kind/duration, empty population, or a
            candidate that does not fit the application/platform.
    """
    model = AnalyticModel(app, num_cores=num_cores, kind=kind,
                          duration_s=duration_s, geometry=geometry,
                          floor_mhz=floor_mhz)
    return model.score(candidates)
