"""repro.oracle — vectorised analytic cost model + two-tier evaluation.

The exact cost oracle (:class:`repro.search.cost.CostOracle`) pays a
full event-driven ``simulate()`` per mapping, which caps search and
exploration budgets at hundreds of candidates per second.  This
package provides the fast path:

- :mod:`repro.oracle.model` — a closed-form, numpy-vectorised
  reduction of the tick loop that scores whole populations of
  :class:`repro.search.space.Candidate` mappings per call (batched
  clock floor, duty cycle, power, sync overhead), byte-deterministic
  and exact up to float associativity.
- :mod:`repro.oracle.twotier` — :class:`TwoTierOracle`: screen a
  population analytically, run exact ``simulate()`` only on the top-k
  survivors, with a pluggable keep policy and per-call screen stats.
- :mod:`repro.oracle.calibrate` — the accuracy gate: cross-check
  analytic scores against ``simulate()`` on sampled placements and
  report relative-error percentiles.
"""

from .calibrate import (
    CALIBRATE_SAMPLES,
    CALIBRATE_TOLERANCE,
    CalibrationReport,
    calibrate,
    calibration_payload,
    sample_candidates,
)
from .model import AnalyticModel, PopulationScores, score_population
from .twotier import (
    KEEP_POLICIES,
    TWO_TIER_SCREEN_BUDGET,
    TWO_TIER_TOP_K,
    PopulationEvaluation,
    ScreenStats,
    TwoTierOracle,
    get_two_tier,
    keep_top_k,
)

__all__ = [
    "AnalyticModel",
    "PopulationScores",
    "score_population",
    "TwoTierOracle",
    "PopulationEvaluation",
    "ScreenStats",
    "keep_top_k",
    "get_two_tier",
    "KEEP_POLICIES",
    "TWO_TIER_TOP_K",
    "TWO_TIER_SCREEN_BUDGET",
    "CalibrationReport",
    "calibrate",
    "calibration_payload",
    "sample_candidates",
    "CALIBRATE_SAMPLES",
    "CALIBRATE_TOLERANCE",
]
