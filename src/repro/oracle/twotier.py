"""Two-tier evaluation: analytic screen, exact verify.

Generalises the search's feasibility pre-filter to *costs*: a whole
population is ranked by the vectorised analytic model
(:mod:`repro.oracle.model`), and only the top-k survivors pay a full
``simulate()`` through the exact :class:`repro.search.cost.CostOracle`.
The keep policy is pluggable (any callable ``costs -> kept indices``),
and every call records per-call screen statistics — how many
candidates were screened, how many were simulated, and whether the
analytic front-runner agreed with the exact verdict — so consumers
can report screen/exact agreement instead of assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..apps.mapping import MappingPlan
from ..apps.phases import AppSpec
from ..isa.layout import ImGeometry
from ..search.cost import ORACLE_DURATION_S, CostOracle, get_oracle
from ..search.space import Candidate, plan_from_candidate
from .model import AnalyticModel, PopulationScores

#: Default exact verifications per screened population.
TWO_TIER_TOP_K = 4

#: Default analytic proposal budget of a two-tier search walk (the
#: analytic tier is ~3 orders of magnitude cheaper than a simulation,
#: so the walk can afford a 4x budget over the exact default).
TWO_TIER_SCREEN_BUDGET = 160


def keep_top_k(costs: np.ndarray, top_k: int) -> list[int]:
    """The default keep policy: k best candidates, stable on ties."""
    order = np.argsort(costs, kind="stable")
    return [int(index) for index in order[:top_k]]


#: Named keep policies :func:`get_two_tier` accepts; any callable
#: ``(costs, top_k) -> kept indices (best first)`` plugs in directly.
KEEP_POLICIES: dict[str, Callable[[np.ndarray, int], list[int]]] = {
    "top-k": keep_top_k,
}


@dataclass(frozen=True)
class ScreenStats:
    """Per-call statistics of one two-tier evaluation.

    Attributes:
        screened: candidates scored by the analytic tier.
        simulated: candidates verified by the exact tier.
        agreement: True when the analytic front-runner was also the
            exact best among the survivors.
    """

    screened: int
    simulated: int
    agreement: bool


@dataclass(frozen=True)
class PopulationEvaluation:
    """Everything one two-tier population evaluation produces.

    Attributes:
        scores: analytic scores of the whole population.
        kept: indices that survived the screen (rank order).
        exact: ``index -> (cost, metrics)`` for the survivors.
        best_index: survivor with the lowest exact cost (ties break
            toward the better analytic rank).
        stats: the call's screen statistics.
    """

    scores: PopulationScores
    kept: tuple[int, ...]
    exact: dict[int, tuple[float, dict]]
    best_index: int
    stats: ScreenStats


@dataclass
class TwoTierOracle:
    """Screen populations analytically; simulate only the survivors.

    Drop-in superset of :class:`repro.search.cost.CostOracle`: it
    exposes the same :meth:`evaluate` (exact, one plan) so existing
    consumers keep working, plus the population interface
    (:meth:`screen` / :meth:`evaluate_population`) and the
    ``screens`` marker the search driver dispatches on.  Analytic
    models are cached per ``(application, width)`` so the activity
    base is computed once per search, not once per candidate.

    Attributes:
        exact: the exact cost oracle verifying survivors.
        top_k: survivors verified per screened population.
        screen_budget: analytic proposal budget consumers should give
            the screen tier (the two-tier walk's iteration count).
        keep: the keep policy (``(costs, top_k) -> kept indices``).
        stats: per-call statistics, append order.
    """

    exact: CostOracle
    top_k: int = TWO_TIER_TOP_K
    screen_budget: int = TWO_TIER_SCREEN_BUDGET
    keep: Callable[[np.ndarray, int], list[int]] = keep_top_k
    stats: list[ScreenStats] = field(default_factory=list)

    #: Marker the search driver dispatches on.
    screens = True

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError(
                f"top-k must be >= 1, got {self.top_k}")
        if self.screen_budget < self.top_k:
            raise ValueError(
                f"screen budget must be >= top-k, got "
                f"{self.screen_budget} < {self.top_k}")
        self._models: dict[tuple[int, int], AnalyticModel] = {}

    @property
    def kind(self) -> str:
        """Cost kind of both tiers."""
        return self.exact.kind

    @property
    def duration_s(self) -> float:
        """Simulated seconds per evaluation of both tiers."""
        return self.exact.duration_s

    def model_for(self, app: AppSpec, num_cores: int = 8,
                  geometry: ImGeometry | None = None) -> AnalyticModel:
        """The (cached) analytic model of one application."""
        key = (id(app), num_cores)
        model = self._models.get(key)
        if model is None:
            model = AnalyticModel(
                app, num_cores=num_cores, kind=self.exact.kind,
                duration_s=self.exact.duration_s, geometry=geometry)
            self._models[key] = model
        return model

    def evaluate(self, app: AppSpec, plan: MappingPlan,
                 num_cores: int = 8) -> tuple[float, dict]:
        """Exact-tier passthrough (one plan, one full simulation)."""
        return self.exact.evaluate(app, plan, num_cores)

    def record(self, screened: int, simulated: int,
               agreement: bool) -> ScreenStats:
        """Append (and return) one call's screen statistics."""
        stats = ScreenStats(screened=screened, simulated=simulated,
                            agreement=agreement)
        self.stats.append(stats)
        obs.add("oracle.screen.calls")
        obs.add("oracle.screen.screened", screened)
        obs.add("oracle.screen.simulated", simulated)
        if agreement:
            obs.add("oracle.screen.agreed")
        return stats

    def screen(self, app: AppSpec, candidates: Sequence[Candidate],
               num_cores: int = 8) -> PopulationScores:
        """Analytic-tier scores of a whole population (no simulation)."""
        return self.model_for(app, num_cores).score(candidates)

    def evaluate_population(self, app: AppSpec,
                            candidates: Sequence[Candidate],
                            num_cores: int = 8) -> PopulationEvaluation:
        """Screen a population, then exact-verify the top-k survivors.

        Args:
            app: the application the candidates place.
            candidates: feasible candidate mappings.
            num_cores: provisioned platform width.

        Returns:
            The population evaluation; ``best_index`` is the
            exact-verified winner and ``stats`` records the call's
            screen/simulate counts and screen/exact agreement.

        Raises:
            ValueError: empty population or a candidate that does not
                fit the application/platform.
        """
        scores = self.screen(app, candidates, num_cores)
        kept = self.keep(scores.cost, self.top_k)
        exact: dict[int, tuple[float, dict]] = {}
        best_index = -1
        best_cost = float("inf")
        for index in kept:
            plan = plan_from_candidate(app, candidates[index])
            cost, metrics = self.exact.evaluate(app, plan, num_cores)
            exact[index] = (cost, metrics)
            if cost < best_cost:
                best_index, best_cost = index, cost
        stats = self.record(
            screened=len(candidates),
            simulated=len(kept),
            agreement=bool(kept) and best_index == kept[0],
        )
        return PopulationEvaluation(
            scores=scores,
            kept=tuple(kept),
            exact=exact,
            best_index=best_index,
            stats=stats,
        )


def get_two_tier(cost: str = "power",
                 duration_s: float = ORACLE_DURATION_S,
                 top_k: int = TWO_TIER_TOP_K,
                 screen_budget: int = TWO_TIER_SCREEN_BUDGET,
                 keep: str = "top-k") -> TwoTierOracle:
    """Build a two-tier oracle.

    Args:
        cost: cost kind of both tiers (see
            :data:`repro.search.cost.ORACLE_KINDS`).
        duration_s: simulated seconds per evaluation.
        top_k: exact verifications per screened population.
        screen_budget: analytic proposal budget of the screen tier.
        keep: named keep policy in :data:`KEEP_POLICIES`.

    Raises:
        ValueError: unknown cost kind or keep policy, non-positive
            duration, ``top_k`` < 1, or ``screen_budget`` < ``top_k``.
    """
    if keep not in KEEP_POLICIES:
        raise ValueError(
            f"unknown keep policy {keep!r}; choose from "
            f"{sorted(KEEP_POLICIES)}")
    return TwoTierOracle(
        exact=get_oracle(cost, duration_s),
        top_k=top_k,
        screen_budget=screen_budget,
        keep=KEEP_POLICIES[keep],
    )
