"""repro.obs — unified metrics/tracing for every layer.

A lightweight hierarchical instrumentation registry with a zero-cost
no-op default: hot paths call :func:`add` / :func:`gauge` /
:func:`span` unconditionally, and nothing is collected (or even
allocated) until a run opts in via :func:`collecting` — which is what
the ``python -m repro.eval ... --metrics`` flag does.  See
``docs/observability.md`` for the API, the dotted naming conventions
and the merge/determinism semantics.

Imports nothing from the rest of :mod:`repro` (stdlib only), so any
layer may instrument itself without dependency cycles.
"""

from .artifact import (
    METRICS_SCHEMA,
    dumps_metrics,
    metrics_payload,
    strip_timings,
    write_metrics_json,
)
from .registry import (
    MetricsRegistry,
    Span,
    activate,
    active,
    add,
    collecting,
    counter_delta,
    deactivate,
    gauge,
    is_active,
    observe,
    span,
    suspended,
)
from .render import render_metrics

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "Span",
    "activate",
    "active",
    "add",
    "collecting",
    "counter_delta",
    "deactivate",
    "dumps_metrics",
    "gauge",
    "is_active",
    "metrics_payload",
    "observe",
    "render_metrics",
    "span",
    "strip_timings",
    "suspended",
    "write_metrics_json",
]
