"""The versioned ``repro-metrics/1`` artifact.

Schema::

    {
      "schema": "repro-metrics/1",
      "experiment": "net",                      # CLI subcommand ("" ok)
      "counters": {"engine.ticks": 27000, ...}, # ints, deterministic
      "gauges": {"net.stream.wave_size": 32.0}, # floats, deterministic
      "timings": {                              # wall-clock, excluded
        "net.stream.run": {"count": 1,          # from determinism
                           "total_s": 0.41,     # comparisons
                           "max_s": 0.41}
      }
    }

``counters`` and ``gauges`` are byte-deterministic across
PYTHONHASHSEED values, worker counts and resume points; ``timings``
are machine noise by definition.  :func:`strip_timings` produces the
comparable form the CI determinism step ``cmp``\\ s.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import MetricsRegistry

#: Schema tag of the metrics artifact (bump on incompatible changes).
METRICS_SCHEMA = "repro-metrics/1"


def metrics_payload(
    registry: MetricsRegistry, experiment: str = ""
) -> dict:
    """The artifact payload of one collected run."""
    snapshot = registry.snapshot()
    return {
        "schema": METRICS_SCHEMA,
        "experiment": experiment,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "timings": snapshot["timings"],
    }


def strip_timings(payload: dict) -> dict:
    """The deterministic portion of a payload (timings dropped)."""
    return {
        key: value for key, value in payload.items() if key != "timings"
    }


def dumps_metrics(payload: dict) -> str:
    """Canonical serialisation (sorted keys, 2-space indent, LF)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_metrics_json(
    registry: MetricsRegistry,
    path: str | Path,
    experiment: str = "",
) -> Path:
    """Write the metrics artifact; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        dumps_metrics(metrics_payload(registry, experiment)),
        encoding="utf-8",
    )
    return path
