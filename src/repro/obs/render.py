"""Tree-view text rendering of a metrics registry.

Counters render as an indented tree over their dotted-name segments
(so ``engine.beats.abnormal`` nests under ``engine`` / ``beats``);
gauges and timings are short flat lists.  Output is a pure function
of the registry contents — the golden render test pins it
byte-for-byte.
"""

from __future__ import annotations

from .registry import MetricsRegistry

__all__ = ["render_metrics"]


def _tree(names: dict) -> dict:
    """Nest dotted names: segment -> {"value": .., "children": {..}}."""
    root: dict = {}
    for name in sorted(names):
        node = root
        parts = name.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {"value": None, "children": {}})
            node = node["children"]
        leaf = node.setdefault(parts[-1], {"value": None, "children": {}})
        leaf["value"] = names[name]
    return root


def _tree_rows(
    node: dict, depth: int, rows: list[tuple[int, str, str]]
) -> None:
    for name in sorted(node):
        entry = node[name]
        value = entry["value"]
        rows.append(
            (depth, name, "" if value is None else f"{value:,}")
        )
        _tree_rows(entry["children"], depth + 1, rows)


def render_metrics(registry: MetricsRegistry) -> str:
    """Render one registry as an indented tree plus flat timing rows."""
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    timings = snapshot["timings"]
    lines = [
        f"Metrics: {len(counters)} counter(s), {len(gauges)} "
        f"gauge(s), {len(timings)} timer(s)"
    ]
    if counters:
        rows: list[tuple[int, str, str]] = []
        _tree_rows(_tree(counters), 0, rows)
        labels = [
            "  " * depth + name for depth, name, _ in rows
        ]
        label_width = max(len(label) for label in labels)
        value_width = max(len(value) for _, _, value in rows)
        lines.append("  counters:")
        for label, (_, _, value) in zip(labels, rows):
            pad = label_width - len(label) + value_width
            lines.append(f"    {label}  {value.rjust(pad)}".rstrip())
    if gauges:
        lines.append("  gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"    {name.ljust(width)}  {gauges[name]:g}")
    if timings:
        lines.append("  timings (wall-clock; excluded from determinism):")
        width = max(len(name) for name in timings)
        for name in sorted(timings):
            entry = timings[name]
            lines.append(
                f"    {name.ljust(width)}  {entry['count']:>5} call(s)"
                f"  {entry['total_s']:>9.3f} s total"
                f"  {entry['max_s']:>8.3f} s max"
            )
    return "\n".join(lines)
