"""The metrics registry and the module-wide no-op collection API.

Instrumentation in hot paths goes through the module-level functions
(:func:`add`, :func:`gauge`, :func:`observe`, :func:`span`).  By
default no registry is active and every call is a cheap early return —
no collector state is allocated until a run opts in through
:func:`collecting` (or :func:`activate`), which is what the
``--metrics`` CLI flag does.

Three metric kinds exist, split by determinism contract:

* **counters** — integer event counts merged by addition.  Integer
  addition is order-independent, so counters are byte-deterministic
  across PYTHONHASHSEED values, worker counts and resume points; the
  determinism gates compare them.
* **gauges** — float high-water marks merged by ``max`` (commutative,
  so still deterministic for deterministic inputs).
* **timings** — wall-clock span aggregates ``(count, total_s,
  max_s)``.  Inherently machine-dependent; excluded from every
  determinism comparison.

Names are dotted paths (``net.stream.wave``, ``sweep.cache.hit``) so
renderers and diff tools can group by subsystem.

Multiprocessing workers collect into their own registry and ship a
:meth:`MetricsRegistry.snapshot` back to the parent, which merges the
snapshots in payload index order (see :func:`repro.parallel.pool_map`).
:func:`suspended` masks collection around memoised computation whose
execution count depends on process-local cache state — call sites
record a deterministic *request* counter instead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class MetricsRegistry:
    """One run's collected counters, gauges and timing aggregates."""

    __slots__ = ("counters", "gauges", "timings")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        # name -> [count, total_s, max_s]; lists keep the hot path to
        # two index assignments instead of a dataclass rebuild.
        self.timings: dict[str, list[float]] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment a counter (integers only: order-independent)."""
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        """Raise a high-water-mark gauge (merged by ``max``)."""
        value = float(value)
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Fold one wall-clock span into a timing aggregate."""
        entry = self.timings.get(name)
        if entry is None:
            self.timings[name] = [1, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds > entry[2]:
                entry[2] = seconds

    def snapshot(self) -> dict:
        """JSON-ready copy of everything collected so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timings": {
                name: {
                    "count": int(entry[0]),
                    "total_s": entry[1],
                    "max_s": entry[2],
                }
                for name, entry in self.timings.items()
            },
        }

    def deterministic(self) -> dict:
        """The deterministic sections only (counters + gauges)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (or :meth:`deterministic`) in.

        Counters add, gauges max-merge, timings recombine exactly —
        all commutative, so merge order never changes the result.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.add(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, entry in snapshot.get("timings", {}).items():
            mine = self.timings.get(name)
            if mine is None:
                self.timings[name] = [
                    int(entry["count"]),
                    float(entry["total_s"]),
                    float(entry["max_s"]),
                ]
            else:
                mine[0] += int(entry["count"])
                mine[1] += float(entry["total_s"])
                if entry["max_s"] > mine[2]:
                    mine[2] = float(entry["max_s"])


def counter_delta(base: dict, current: dict) -> dict:
    """Deterministic-section delta ``current - base`` (for resume).

    Counter keys that did not grow are dropped; gauges pass through
    unchanged (max-merge makes re-merging them idempotent).  The
    streaming checkpoint persists this delta so a resumed run can
    reconstruct the counters a cold run would have produced.
    """
    counters = {}
    base_counters = base.get("counters", {})
    for name, value in current.get("counters", {}).items():
        diff = value - base_counters.get(name, 0)
        if diff:
            counters[name] = diff
    return {
        "counters": counters,
        "gauges": dict(current.get("gauges", {})),
    }


#: The active registry; ``None`` (the default) makes every module-level
#: recording call a no-op.
_active: MetricsRegistry | None = None


def active() -> MetricsRegistry | None:
    """The currently active registry, or ``None`` when collection is off."""
    return _active


def is_active() -> bool:
    """Whether a registry is currently collecting."""
    return _active is not None


def activate(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) the active registry.

    Replaces any previously active registry — which is exactly what a
    forked worker must do, since it inherits the parent's registry and
    must collect into its own.
    """
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def deactivate() -> None:
    """Turn collection off (back to the zero-cost default)."""
    global _active
    _active = None


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Activate a registry for the duration of the block."""
    global _active
    previous = _active
    current = activate(registry)
    try:
        yield current
    finally:
        _active = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Mask collection for the duration of the block.

    Used around memoised computation (``lru_cache`` bodies) whose
    execution count depends on per-process cache state: the inner
    events would differ across worker counts and resume points, so the
    call site records a deterministic request counter instead and the
    body records nothing.
    """
    global _active
    previous = _active
    _active = None
    try:
        yield
    finally:
        _active = previous


def add(name: str, amount: int = 1) -> None:
    """Increment a counter on the active registry (no-op when off)."""
    if _active is not None:
        _active.add(name, amount)


def gauge(name: str, value: float) -> None:
    """Raise a gauge on the active registry (no-op when off)."""
    if _active is not None:
        _active.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record one span duration on the active registry (no-op when off)."""
    if _active is not None:
        _active.observe(name, seconds)


class Span:
    """One wall-clock span, usable as a context manager or manually.

    The measured :attr:`elapsed_s` is always computed (several result
    dataclasses report it), but it is only *recorded* into the active
    registry's timings — never when collection is off.

    Usage::

        with obs.span("sweep.point"):
            ...                      # context-manager form

        span = obs.span("net.fleet.run").start()
        ...
        elapsed = span.stop()        # manual form
    """

    __slots__ = ("name", "elapsed_s", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed_s = 0.0
        self._start: float | None = None

    def start(self) -> "Span":
        """Begin timing; returns self for chaining."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """End timing, record into the active registry, return elapsed."""
        if self._start is None:
            raise RuntimeError(f"span {self.name!r} was never started")
        self.elapsed_s = time.perf_counter() - self._start
        self._start = None
        observe(self.name, self.elapsed_s)
        return self.elapsed_s

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def span(name: str) -> Span:
    """A new (not yet started) :class:`Span`."""
    return Span(name)
