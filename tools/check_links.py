"""Markdown relative-link checker (the CI docs gate).

Scans Markdown files for inline links and images
(``[text](target)`` / ``![alt](target)``) and fails when a *relative*
target does not exist on disk.  External schemes (``http://``,
``https://``, ``mailto:``) and pure in-page anchors (``#section``)
are ignored; ``path#fragment`` targets are checked for the path only,
and an optional ``"title"`` suffix is stripped.  Known limitation:
targets containing a closing parenthesis are truncated at it (write
such links reference-style if they ever appear).

Run with::

    python tools/check_links.py README.md docs

Arguments are files or directories; directories are scanned
recursively for ``*.md``.
"""

import argparse
import re
import sys
from pathlib import Path

#: Inline Markdown links/images: [text](target) — target captured up
#: to the first closing parenthesis (spaces allowed inside).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)]+)\)")

#: Optional `target "title"` form: the quoted title is dropped.
TITLE_RE = re.compile(r'^(\S+)\s+"[^"]*"$')

#: Schemes that are never checked against the filesystem.
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(paths: list[str]) -> list[Path]:
    """Every Markdown file named by the arguments (sorted, deduped)."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.update(path.rglob("*.md"))
        else:
            found.add(path)
    return sorted(found)


def check_file(path: Path) -> list[str]:
    """Broken-link messages for one Markdown file."""
    problems = []
    if not path.is_file():
        return [f"{path}: file does not exist"]
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1).strip()
        titled = TITLE_RE.match(target)
        if titled:
            target = titled.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative)
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{path}:{line}: broken relative link -> {target}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on broken relative links in Markdown files")
    parser.add_argument(
        "paths", nargs="+",
        help="Markdown files or directories to scan recursively")
    args = parser.parse_args(argv)
    files = iter_markdown(args.paths)
    if not files:
        print("no Markdown files found", file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("broken links:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"link check passed ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
