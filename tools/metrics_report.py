"""Compare or strip ``repro-metrics/1`` artifacts (the CI gate).

Two modes:

``diff``
    Compare the deterministic sections (counters and gauges) of two
    metrics artifacts and print every divergence.  The ``timings``
    section is wall-clock and always ignored.  With ``--fail-on-diff``
    the exit status is 1 when the artifacts disagree — the shape CI
    uses to pin counter determinism across hash seeds, worker counts
    and kill/resume points.

``strip``
    Rewrite one artifact with the ``timings`` section removed, so two
    runs of the same experiment can be compared byte-for-byte with
    plain ``cmp``.

Run with::

    python tools/metrics_report.py diff a.json b.json --fail-on-diff
    python tools/metrics_report.py strip run.json stripped.json
"""

import argparse
import json
import sys


def load_metrics(path: str) -> dict:
    """Load one artifact, rejecting anything but ``repro-metrics/1``."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != "repro-metrics/1":
        raise SystemExit(
            f"{path}: expected schema repro-metrics/1, got {schema!r}")
    return payload


def diff_section(section: str, a: dict, b: dict) -> list[str]:
    """Human-readable divergences of one name -> value mapping."""
    problems = []
    for name in sorted(set(a) | set(b)):
        left = a.get(name)
        right = b.get(name)
        if left == right:
            continue
        left_text = "absent" if name not in a else f"{left}"
        right_text = "absent" if name not in b else f"{right}"
        problems.append(
            f"{section}.{name}: {left_text} != {right_text}")
    return problems


def diff_metrics(a: dict, b: dict) -> list[str]:
    """All deterministic-section divergences between two payloads."""
    problems = []
    if a.get("experiment") != b.get("experiment"):
        problems.append(
            f"experiment: {a.get('experiment')!r} != "
            f"{b.get('experiment')!r}")
    for section in ("counters", "gauges"):
        problems.extend(
            diff_section(section, a.get(section, {}), b.get(section, {})))
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff or strip repro-metrics/1 artifacts")
    commands = parser.add_subparsers(dest="command", required=True)
    diff = commands.add_parser(
        "diff", help="compare the deterministic sections of two "
                     "artifacts (timings are always ignored)")
    diff.add_argument("first", help="baseline metrics artifact")
    diff.add_argument("second", help="candidate metrics artifact")
    diff.add_argument(
        "--fail-on-diff", action="store_true",
        help="exit 1 when the artifacts disagree")
    strip = commands.add_parser(
        "strip", help="rewrite an artifact without its timings "
                      "section (byte-comparable with cmp)")
    strip.add_argument("source", help="metrics artifact to strip")
    strip.add_argument("target", help="where to write the stripped copy")
    args = parser.parse_args(argv)

    if args.command == "strip":
        payload = load_metrics(args.source)
        payload.pop("timings", None)
        with open(args.target, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"stripped {args.source} -> {args.target}")
        return 0

    first = load_metrics(args.first)
    second = load_metrics(args.second)
    problems = diff_metrics(first, second)
    if problems:
        print(f"metrics diverge ({len(problems)} difference(s)):")
        for problem in problems:
            print(f"  {problem}")
        return 1 if args.fail_on_diff else 0
    print("metrics match (counters and gauges identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
