"""Platform microbenchmarks: simulator, tool-chain and DSP throughput.

Not a paper artifact — these track the performance of the reproduction
itself (cycle-level simulation rate, assembler speed, kernel runs, DSP
throughput) so regressions in the substrate are visible.

Run with::

    pytest benchmarks/bench_platform.py --benchmark-only
    python benchmarks/bench_platform.py   # emit BENCH_platform.json
"""

from repro.hw import System
from repro.isa import assemble
from repro.kernels import (
    characterize_barrier_pipeline,
    characterize_window_min,
    mac_kernel,
    window_min_kernel,
)
from repro.dsp import MorphologicalFilter
from repro.signals import cse_like_record

_SPIN = """
main:
    li r1, 2000
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
"""


def test_cycle_sim_throughput(benchmark):
    """Cycles per second of the cycle-accurate single-core platform."""
    image = assemble(_SPIN)

    def run():
        system = System.singlecore()
        system.load(image)
        system.run(20_000)
        return system.cycle

    cycles = benchmark(run)
    assert cycles > 4000


def test_multicore_sim_throughput(benchmark):
    """Eight replicated cores in lock-step (broadcast fast path)."""
    entries = "\n".join(f".entry {core}, main" for core in range(8))
    image = assemble(entries + _SPIN)

    def run():
        system = System.multicore()
        system.load(image)
        system.run(20_000)
        return system.activity()

    activity = benchmark(run)
    assert activity.im_broadcast_fraction > 0.8


def test_assembler_throughput(benchmark):
    """Assemble a ~2000-line source."""
    body = "\n".join(f"    addi r1, r1, {i % 7}" for i in range(2000))
    source = f"main:\n{body}\n    halt"
    image = benchmark(assemble, source)
    assert image.code_words == 2001


def test_kernel_window_min(benchmark):
    report = benchmark(characterize_window_min, 3, 16, 32)
    assert report.alignment > 0.4


def test_kernel_barrier_pipeline(benchmark):
    report = benchmark(characterize_barrier_pipeline, 3, 6)
    assert report.consumer_sum == report.expected_sum


def test_kernel_sources_build(benchmark):
    source = benchmark(window_min_kernel, 3, 32, 64, True)
    assert "sinc" in source
    assert "mul" in mac_kernel()


def test_dsp_filter_throughput(benchmark):
    """Morphological filtering of 30 s of one lead."""
    record = cse_like_record(duration_s=30.0, num_leads=1)
    mf = MorphologicalFilter(fs=record.fs)
    filtered = benchmark(mf.process, record.leads[0])
    assert len(filtered) == record.num_samples


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_platform.json."""
    from repro.sweep import bench_main

    return bench_main("platform", argv)


if __name__ == "__main__":
    raise SystemExit(main())
