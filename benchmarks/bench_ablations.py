"""ABL-1..4 benchmarks: the mechanism ablations of DESIGN.md.

Run with::

    pytest benchmarks/bench_ablations.py --benchmark-only
    python benchmarks/bench_ablations.py  # emit BENCH_ablations.json
"""

from conftest import BENCH_DURATION_S
from repro.eval import (
    ablate_broadcast,
    ablate_lockstep_recovery,
    ablate_sleep,
    ablate_vfs,
    render_ablations,
    run_all_ablations,
)


def test_ablation_broadcast(benchmark):
    """ABL-1: instruction broadcasting matters on 3L-MF."""
    result = benchmark(ablate_broadcast, BENCH_DURATION_S)
    assert result.penalty_fraction > 0.15


def test_ablation_vfs(benchmark):
    """ABL-2: voltage scaling is the zero-pathology gain of Fig. 7."""
    result = benchmark(ablate_vfs, BENCH_DURATION_S)
    assert result.penalty_fraction > 0.3


def test_ablation_sleep(benchmark):
    """ABL-3: clock-gating vs. active waiting, all benchmarks."""
    results = benchmark(ablate_sleep, BENCH_DURATION_S)
    assert len(results) == 3
    for result in results:
        assert result.penalty_fraction > 0.3


def test_ablation_lockstep(benchmark):
    """ABL-4: lock-step recovery drives the broadcast dividend."""
    result = benchmark(ablate_lockstep_recovery, BENCH_DURATION_S)
    assert result.penalty_fraction > 0.15


def test_all_ablations(benchmark):
    results = benchmark(run_all_ablations, BENCH_DURATION_S)
    report = render_ablations(results)
    assert "ABL-4" in report
    print()
    print(report)


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_ablations.json."""
    from repro.sweep import bench_main

    return bench_main("ablations", argv)


if __name__ == "__main__":
    raise SystemExit(main())
