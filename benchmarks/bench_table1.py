"""EXP-T1 benchmark: regenerate Table I (all benchmarks, SC + MC).

Run with::

    pytest benchmarks/bench_table1.py --benchmark-only
    python benchmarks/bench_table1.py     # emit BENCH_table1.json
"""

import pytest

from conftest import BENCH_DURATION_S
from repro.eval import PAPER_TABLE1, render_table1, run_case, run_table1
from repro.eval.runconfig import benchmark_cases


@pytest.mark.parametrize("index, name",
                         [(0, "3L-MF"), (1, "3L-MMD"), (2, "RP-CLASS")])
def test_table1_column(benchmark, index, name):
    """Time one benchmark's SC+MC column and check its headline rows."""
    case = benchmark_cases(BENCH_DURATION_S)[index]
    column = benchmark(run_case, case, BENCH_DURATION_S)
    paper = PAPER_TABLE1[name]
    values = column.as_dict()
    assert values["mc_clock"] == paper["mc_clock"]
    assert values["mc_voltage"] == paper["mc_voltage"]
    assert values["saving"] == pytest.approx(paper["saving"], abs=0.05)
    assert values["im_broadcast"] == pytest.approx(paper["im_broadcast"],
                                                   abs=0.02)


def test_table1_full(benchmark):
    """Time the full Table I regeneration and print it."""
    columns = benchmark(run_table1, BENCH_DURATION_S)
    report = render_table1(columns)
    assert "Saving" in report
    print()
    print(report)


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_table1.json."""
    from repro.sweep import bench_main

    return bench_main("table1", argv)


if __name__ == "__main__":
    raise SystemExit(main())
