"""EXP-SEARCH benchmark: placement-search throughput.

Times the stochastic mapping search end to end: one seeded annealing
walk (candidate mutation + repair + memoised cost-oracle simulation)
and one greedy walk over a generated application.  The plain-script
mode replays the ``search`` campaign through the sweep subsystem and
emits ``BENCH_search.json`` in the ``repro-bench/1`` schema the CI
regression gate tracks.

Run with::

    pytest benchmarks/bench_search.py --benchmark-only
    python benchmarks/bench_search.py     # emit BENCH_search.json
"""

from repro.gen import suite_tokens
from repro.search import search_token

#: Seed of the benchmark suite (any value works; fixed for stability).
BENCH_SEED = 2014

#: Proposal budget per timed walk.
BENCH_ITERATIONS = 16


def test_anneal_walk_throughput(benchmark):
    """Time one annealing walk (regenerate + search + simulate)."""
    token = suite_tokens(BENCH_SEED, 1)[0]
    outcome = benchmark(search_token, token, 8, "anneal", "power",
                        BENCH_ITERATIONS, BENCH_SEED, 1.0)
    assert outcome.status in ("ok", "repaired")
    assert outcome.gap >= 0.0


def test_greedy_walk_throughput(benchmark):
    """Time one greedy hill-climb walk."""
    token = suite_tokens(BENCH_SEED, 2)[1]
    outcome = benchmark(search_token, token, 8, "greedy", "power",
                        BENCH_ITERATIONS, BENCH_SEED, 1.0)
    assert outcome.status in ("ok", "repaired")
    assert outcome.best_cost <= outcome.start_cost


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_search.json."""
    from repro.sweep import bench_main

    return bench_main("search", argv)


if __name__ == "__main__":
    raise SystemExit(main())
