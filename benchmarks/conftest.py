"""Shared configuration of the benchmark harness.

Each ``bench_*`` file regenerates one artifact of the paper's
evaluation (see DESIGN.md's experiment index) while pytest-benchmark
times the regeneration.  A reduced simulated duration keeps wall time
reasonable; the reproduced metrics are duration-invariant (stationary
workloads), which the test suite verifies separately.
"""

#: Simulated seconds used by the benchmark harness runs.
BENCH_DURATION_S = 15.0
