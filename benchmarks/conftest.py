"""Shared configuration of the benchmark harness.

Each ``bench_*`` file regenerates one artifact of the paper's
evaluation (see DESIGN.md's experiment index) while pytest-benchmark
times the regeneration; the plain-script modes replay the same
campaigns through :mod:`repro.sweep` and emit ``BENCH_<name>.json``.
The reduced simulated duration keeps wall time reasonable; the
reproduced metrics are duration-invariant (stationary workloads),
which the test suite verifies separately.
"""

from repro.sweep.specs import BENCH_DURATION_S  # noqa: F401
