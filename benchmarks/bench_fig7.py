"""EXP-F7 benchmark: regenerate Figure 7 (pathological-ratio sweep).

Run with::

    pytest benchmarks/bench_fig7.py --benchmark-only
    python benchmarks/bench_fig7.py       # emit BENCH_fig7.json
"""

import pytest

from conftest import BENCH_DURATION_S
from repro.eval import FIG7_RATIOS, render_fig7, run_fig7
from repro.sysc.engine import Mode, simulate
from repro.eval.runconfig import rp_case


@pytest.mark.parametrize("ratio", [0.0, 0.2, 1.0])
def test_fig7_point(benchmark, ratio):
    """Time one sweep point (both systems) and check who wins."""
    case = rp_case(ratio, BENCH_DURATION_S)

    def run_point():
        single = simulate(case.app, Mode.SINGLE_CORE, case.schedule,
                          duration_s=BENCH_DURATION_S)
        multi = simulate(case.app, Mode.MULTI_CORE, case.schedule,
                         duration_s=BENCH_DURATION_S)
        return single, multi

    single, multi = benchmark(run_point)
    assert multi.power.total_uw < single.power.total_uw


def test_fig7_full_sweep(benchmark):
    """Time the full sweep; check the reduction's shape and print it."""
    points = benchmark(run_fig7, FIG7_RATIOS, BENCH_DURATION_S)
    reductions = [point.reduction for point in points]
    sc_powers = [point.sc_power_uw for point in points]
    assert all(a < b for a, b in zip(sc_powers, sc_powers[1:]))
    assert max(reductions) > 0.35  # paper: "up to 38 %"
    assert reductions[-1] > reductions[0]
    print()
    print(render_fig7(points))


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_fig7.json."""
    from repro.sweep import bench_main

    return bench_main("fig7", argv)


if __name__ == "__main__":
    raise SystemExit(main())
