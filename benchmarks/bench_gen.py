"""EXP-GEN benchmark: generated-workload exploration throughput.

Times the synthetic-workload pipeline end to end: suite generation
(topology draw + characterisation-anchored sampling) and one
(app, policy) exploration point through the behavioural simulator.
The plain-script mode replays the ``gen`` campaign through the sweep
subsystem and emits ``BENCH_gen.json`` in the ``repro-bench/1``
schema the CI regression gate tracks.

Run with::

    pytest benchmarks/bench_gen.py --benchmark-only
    python benchmarks/bench_gen.py        # emit BENCH_gen.json
"""

from repro.gen import evaluate_token, generate_suite, suite_tokens

#: Suite size of the generation throughput benchmark.
BENCH_SUITE = 25

#: Seed of the benchmark suite (any value works; fixed for stability).
BENCH_SEED = 2014


def test_generate_suite_throughput(benchmark):
    """Time generating a balanced suite across all families."""
    apps = benchmark(generate_suite, BENCH_SEED, BENCH_SUITE)
    assert len(apps) == BENCH_SUITE
    assert all(app.phases for app in apps)


def test_explore_point_throughput(benchmark):
    """Time one exploration point (regeneration + mapping + sim)."""
    token = suite_tokens(BENCH_SEED, 1)[0]
    record = benchmark(evaluate_token, token, "balanced", 8, 5.0)
    assert record.status in ("ok", "repaired")
    assert record.power_uw > 0


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_gen.json."""
    from repro.sweep import bench_main

    return bench_main("gen", argv)


if __name__ == "__main__":
    raise SystemExit(main())
