"""EXP-F6 benchmark: regenerate Figure 6 (power decomposition).

Run with::

    pytest benchmarks/bench_fig6.py --benchmark-only
    python benchmarks/bench_fig6.py       # emit BENCH_fig6.json
"""

import pytest

from conftest import BENCH_DURATION_S
from repro.eval import render_fig6, run_fig6, run_group
from repro.eval.runconfig import benchmark_cases


@pytest.mark.parametrize("index, name",
                         [(0, "3L-MF"), (1, "3L-MMD"), (2, "RP-CLASS")])
def test_fig6_group(benchmark, index, name):
    """Time one benchmark's three bars; check the paper's verdict."""
    case = benchmark_cases(BENCH_DURATION_S)[index]
    group = benchmark(run_group, case, BENCH_DURATION_S)
    # Sec. V-B: without sync the MC is lower/comparable/higher than SC.
    verdicts = {"3L-MF": -1, "3L-MMD": 0, "RP-CLASS": +1}
    delta = group.no_sync_vs_single
    if verdicts[name] < 0:
        assert delta < -0.02
    elif verdicts[name] > 0:
        assert delta > 0.02
    else:
        assert abs(delta) < 0.05
    assert group.multi_sync.total_uw < group.single.total_uw


def test_fig6_full(benchmark):
    """Time the full Figure 6 regeneration and print it."""
    groups = benchmark(run_fig6, BENCH_DURATION_S)
    report = render_fig6(groups)
    assert "instr_mem" in report
    print()
    print(report)


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_fig6.json."""
    from repro.sweep import bench_main

    return bench_main("fig6", argv)


if __name__ == "__main__":
    raise SystemExit(main())
