"""Shared benchmark entry point: run every bench on the BENCH schema.

Replays every campaign in :data:`repro.sweep.specs.BENCH_SPECS`,
writes one ``BENCH_<name>.json`` per bench plus the merged
``BENCH_all.json`` the CI regression gate consumes.  Two benches are
not sweep campaigns but emit the same schema keys and ride in the
merged document alongside the others: ``oracle``
(``bench_oracle.py``, analytic vs exact candidate scoring) and
``fleet-fast`` (``bench_fleet.py --fast``, the batched analytic
compute tier vs the exact fleet resolver).

Run with::

    python benchmarks/run_all.py --out-dir bench-out --workers 2
"""

import argparse
import json
import sys
from pathlib import Path

from repro.sweep import BENCH_SPECS, ResultCache, run_all_benches
from repro.sweep.artifacts import merge_bench

import bench_fleet
import bench_oracle


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run every benchmark, emit BENCH_*.json artifacts"
    )
    parser.add_argument(
        "--out-dir", default=".", help="artifact directory (default: cwd)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for cache misses (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_SWEEP_CACHE "
        "or ~/.cache/repro-sweep)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable cache reads and writes",
    )
    parser.add_argument(
        "--force", action="store_true", help="re-execute every point"
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="NAME",
        choices=sorted([*BENCH_SPECS, "oracle", "fleet-fast"]),
        help="run only these benches (default: all)",
    )
    args = parser.parse_args(argv)
    cache = (
        ResultCache(root=args.cache_dir)
        if args.cache_dir is not None and not args.no_cache
        else None
    )
    extra_benches = ("oracle", "fleet-fast")
    run_oracle = args.only is None or "oracle" in args.only
    run_fast = args.only is None or "fleet-fast" in args.only
    sweep_names = (
        None
        if args.only is None
        else tuple(
            name for name in args.only if name not in extra_benches
        )
    )
    merged, path = run_all_benches(
        out_dir=args.out_dir,
        workers=args.workers,
        names=sweep_names,
        cache=cache,
        use_cache=not args.no_cache,
        force=args.force,
    )
    extra_payloads = {}
    if run_oracle:
        extra_payloads["oracle"] = bench_oracle.measure()
    if run_fast:
        extra_payloads["fleet-fast"] = bench_fleet.measure_fast()
    if extra_payloads:
        benches = dict(merged["benches"])
        for name, payload in extra_payloads.items():
            extra_path = Path(args.out_dir) / f"BENCH_{name}.json"
            extra_path.parent.mkdir(parents=True, exist_ok=True)
            extra_path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            benches[name] = payload
        merged = merge_bench(benches)
        path.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    for name, payload in merged["benches"].items():
        print(
            f"  {name:<10} {payload['points']:3d} point(s)  "
            f"{payload['wall_s']:7.2f} s  "
            f"{payload['sim_s_per_s']:9.1f} sim-s/s  "
            f"cache {payload['cache']['hits']}/"
            f"{payload['cache']['misses']}"
        )
    print(
        f"total: {merged['points']} point(s), "
        f"{merged['wall_s']:.2f} s wall, "
        f"{merged['sim_s_per_s']:.1f} simulated-s/s"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
