"""CI benchmark-regression gate.

Compares a freshly produced ``BENCH_all.json`` against the checked-in
baseline (``benchmarks/baseline.json``) and fails when any bench's
simulated-seconds-per-second throughput regresses by more than the
tolerance (default 30 %).  The baseline may also carry ``nodes_per_s``
floors (tolerance-scaled, for the streaming mega-fleet), ``speedup``
floors and ``max_rss_mb`` ceilings (both hard bounds — the latter is
the bounded-memory assertion of the streaming executor).  Benches
emitted outside ``run_all.py`` join the gate via ``--merge``; a
``repro-cover/1`` artifact supplied via ``--cover`` is held to the
baseline's ``covered_bins`` floor (hard, no tolerance — the fuzz
campaign is byte-deterministic).

The baseline records *conservative* throughput floors (well below a
typical developer machine) so the gate only trips on genuine
regressions — an accidentally quadratic hot path, a sweep that stopped
caching — not on CI-runner jitter.

The benches run without a ``repro.obs`` collector (nothing activates
one), so the throughput floors double as the no-op overhead gate of
the instrumentation layer: if the default-off recording calls ever
stop being cheap early returns, ``sim_s_per_s`` drops and this gate
trips.  Refresh the baseline with::

    python benchmarks/run_all.py --out-dir bench-out --no-cache
    python benchmarks/check_regression.py bench-out/BENCH_all.json \
        benchmarks/baseline.json --update

Run with::

    python benchmarks/check_regression.py bench-out/BENCH_all.json \
        benchmarks/baseline.json
"""

import argparse
import json
import os
import sys

#: Default baseline location (next to this script).
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline.json"
)

#: Fraction of baseline throughput a bench may lose before failing.
DEFAULT_TOLERANCE = 0.30

#: Margin applied by ``--update``: the recorded floor is this fraction
#: of the measured throughput, absorbing machine-to-machine spread
#: (CI runners are routinely several times slower than a dev box).
UPDATE_MARGIN = 0.25

#: Peak-RSS ceiling ``--update`` records for benches that report one.
#: A fixed requirement, not machine-derived: the ~100k-node streaming
#: fleet stays a couple dozen MB over interpreter baseline, while
#: holding per-node results would cost hundreds of MB.
RSS_CEILING_MB = 256.0

#: Fixed speedup floors ``--update`` records (hard requirements, not
#: machine-derived): the oracle bench must score >= 100x more
#: candidates per wall-second than exact ``simulate()``, and the
#: fleet compute fast path must finish >= 5x faster than the exact
#: resolver on the same fleet.
SPEEDUP_FLOORS = {"oracle": 100.0, "fleet-fast": 5.0}


def check(
    merged: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    cover: dict | None = None,
) -> list[str]:
    """Return a list of failure messages (empty = gate passes).

    A bench whose payload shows cache hits is rejected outright: its
    ``sim_s_per_s`` measures cache lookups, not simulation, so
    comparing it against a cold baseline would be meaningless.
    """
    failures = []
    benches = merged.get("benches", {})
    for name, floor in sorted(baseline.get("sim_s_per_s", {}).items()):
        payload = benches.get(name)
        if payload is None:
            failures.append(f"{name}: missing from BENCH_all.json")
            continue
        hits = payload.get("cache", {}).get("hits", 0)
        if hits:
            failures.append(
                f"{name}: {hits} cache hit(s) — the gate needs a cold "
                f"run (use --no-cache)"
            )
            continue
        measured = payload.get("sim_s_per_s", 0.0)
        allowed = floor * (1.0 - tolerance)
        if measured < allowed:
            failures.append(
                f"{name}: {measured:.1f} sim-s/s < {allowed:.1f} "
                f"(baseline {floor:.1f}, tolerance {tolerance:.0%})"
            )
    for name, floor in sorted(baseline.get("nodes_per_s", {}).items()):
        payload = benches.get(name)
        if payload is None:
            failures.append(f"{name}: missing from BENCH_all.json")
            continue
        measured = payload.get("nodes_per_s", 0.0)
        allowed = floor * (1.0 - tolerance)
        if measured < allowed:
            failures.append(
                f"{name}: {measured:.0f} nodes/s < {allowed:.0f} "
                f"(baseline {floor:.0f}, tolerance {tolerance:.0%})"
            )
    # Speedup floors are hard requirements (the oracle bench must
    # score >= 100x more candidates per wall-second than exact
    # simulate()), so no tolerance is applied.
    for name, floor in sorted(baseline.get("speedup", {}).items()):
        payload = benches.get(name)
        if payload is None:
            failures.append(f"{name}: missing from BENCH_all.json")
            continue
        measured = payload.get("speedup", 0.0)
        if measured < floor:
            failures.append(
                f"{name}: speedup {measured:.0f}x < required "
                f"{floor:.0f}x"
            )
    # Peak-RSS ceilings are hard bounds too: the streaming executor's
    # whole point is memory that does not scale with fleet size, so a
    # breach means per-node state is accumulating somewhere.
    for name, ceiling in sorted(baseline.get("max_rss_mb", {}).items()):
        payload = benches.get(name)
        if payload is None:
            failures.append(f"{name}: missing from BENCH_all.json")
            continue
        measured = payload.get("peak_rss_mb", 0.0)
        if measured > ceiling:
            failures.append(
                f"{name}: peak RSS {measured:.0f} MB > ceiling "
                f"{ceiling:.0f} MB (memory no longer bounded)"
            )
    # Covered-bin floors are hard bounds with no tolerance: the fuzz
    # campaign is byte-deterministic, so covering fewer bins than the
    # baseline records means the steering (or the generator's shape
    # knobs) genuinely lost reach, not that a runner was slow.
    for name, floor in sorted(baseline.get("covered_bins", {}).items()):
        if cover is None:
            failures.append(
                f"{name}: no repro-cover/1 artifact supplied "
                f"(pass --cover)"
            )
            continue
        measured = cover.get("covered", 0)
        if measured < floor:
            failures.append(
                f"{name}: {measured} covered bin(s) < baseline "
                f"{floor} (fuzz campaign lost coverage)"
            )
    return failures


def update_baseline(merged: dict, cover: dict | None = None) -> dict:
    """A fresh baseline document derived from a measured run.

    Throughput floors are measured-with-margin; speedup floors are
    the fixed per-bench requirements of :data:`SPEEDUP_FLOORS`, not
    machine-derived.  Covered-bin floors are recorded exactly — the
    campaign is deterministic, so no margin applies.
    """
    benches = merged.get("benches", {})
    covered_bins = (
        {"cover": int(cover["covered"])} if cover is not None else {}
    )
    return {
        "schema": "repro-bench-baseline/1",
        "note": (
            "conservative sim-s/s floors; refresh with "
            "check_regression.py --update"
        ),
        "sim_s_per_s": {
            name: round(payload["sim_s_per_s"] * UPDATE_MARGIN, 3)
            for name, payload in sorted(benches.items())
        },
        "nodes_per_s": {
            name: round(payload["nodes_per_s"] * UPDATE_MARGIN, 1)
            for name, payload in sorted(benches.items())
            if "nodes_per_s" in payload
        },
        "speedup": {
            name: SPEEDUP_FLOORS.get(name, 100.0)
            for name, payload in sorted(benches.items())
            if "speedup" in payload
        },
        "max_rss_mb": {
            name: RSS_CEILING_MB
            for name, payload in sorted(benches.items())
            if "peak_rss_mb" in payload
        },
        "covered_bins": covered_bins,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark throughput regresses"
    )
    parser.add_argument("bench", help="path to BENCH_all.json")
    parser.add_argument(
        "baseline_pos",
        nargs="?",
        default=None,
        metavar="baseline",
        help="path to baseline.json "
        "(default: the checked-in benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        dest="baseline_opt",
        help="baseline path override for local experimentation "
        "(equivalent to the positional form)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression (default: 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    parser.add_argument(
        "--merge",
        action="append",
        default=None,
        metavar="PATH",
        help="inject extra BENCH_<name>.json payload(s) into the merged "
        "document before checking (for benches emitted outside "
        "run_all.py, e.g. the fleet-mega streaming bench); repeatable",
    )
    parser.add_argument(
        "--cover",
        default=None,
        metavar="PATH",
        help="repro-cover/1 artifact to hold against the baseline's "
        "covered_bins floor (a hard bound: the fuzz campaign is "
        "deterministic)",
    )
    args = parser.parse_args(argv)
    if args.baseline_pos is not None and args.baseline_opt is not None:
        parser.error(
            "give the baseline either positionally or via --baseline, "
            "not both"
        )
    baseline_path = args.baseline_opt
    if baseline_path is None:
        baseline_path = args.baseline_pos
    if baseline_path is None:
        baseline_path = DEFAULT_BASELINE
    with open(args.bench, encoding="utf-8") as handle:
        merged = json.load(handle)
    cover = None
    if args.cover is not None:
        with open(args.cover, encoding="utf-8") as handle:
            cover = json.load(handle)
    if args.merge:
        benches = dict(merged.get("benches", {}))
        for path in args.merge:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            benches[payload["name"]] = payload
        merged = dict(merged)
        merged["benches"] = benches
    if args.update:
        baseline = update_baseline(merged, cover=cover)
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline refreshed: {baseline_path}")
        return 0
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = check(
        merged, baseline, tolerance=args.tolerance, cover=cover
    )
    if failures:
        print("benchmark regression gate FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    gates = sum(
        len(baseline.get(section, {}))
        for section in (
            "sim_s_per_s",
            "nodes_per_s",
            "speedup",
            "max_rss_mb",
            "covered_bins",
        )
    )
    print(
        f"benchmark regression gate passed ({gates} gate(s), "
        f"tolerance {args.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
