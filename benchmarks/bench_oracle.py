"""Oracle benchmark: analytic screening throughput vs exact simulate().

Times the two tiers of :mod:`repro.oracle` against each other: the
vectorised analytic model scoring whole candidate populations per
call, and the exact cost oracle paying a full event-driven
``simulate()`` per mapping.  The headline figure is ``speedup`` —
candidates scored per wall-second, analytic over exact — which the
CI regression gate requires to stay >= 100x.  The payload also
cross-checks the analytic scores against the exact costs on the
timed candidates (``max_rel_error``), so a throughput win can never
mask an accuracy regression.

The plain-script mode emits ``BENCH_oracle.json`` carrying the
``repro-bench/1`` keys the merge/regression tooling reads
(``wall_s`` / ``simulated_s`` / ``points`` / ``cache``) plus the
oracle-specific extras.

Run with::

    pytest benchmarks/bench_oracle.py --benchmark-only
    python benchmarks/bench_oracle.py     # emit BENCH_oracle.json
"""

import argparse
import json
import time
from pathlib import Path

from repro.apps import three_lead_mmd
from repro.gen.explorer import repair_app
from repro.oracle import AnalyticModel, sample_candidates
from repro.search.cost import get_oracle
from repro.search.space import plan_from_candidate
from repro.sweep import BENCH_SCHEMA

#: Candidates per analytic call (one vectorised population).
POPULATION = 512

#: Timed analytic calls (the population is re-scored each repeat).
REPEATS = 4

#: Exact ``simulate()`` calls timed for the baseline rate.
EXACT_CALLS = 6

#: Simulated seconds per evaluation (both tiers score the same
#: horizon, so the comparison is apples to apples).
BENCH_DURATION_S = 2.0


def _bench_app():
    """The benchmark workload: 3L-MMD repaired onto 8 cores."""
    app, _ = repair_app(three_lead_mmd(), 8)
    return app


def test_analytic_population_throughput(benchmark):
    """Time one vectorised scoring call over the full population."""
    app = _bench_app()
    candidates = sample_candidates(app, samples=POPULATION, seed=1)
    model = AnalyticModel(app, kind="power",
                          duration_s=BENCH_DURATION_S)
    scores = benchmark(model.score, candidates)
    assert len(scores) == len(candidates)


def test_exact_oracle_throughput(benchmark):
    """Time one exact evaluation (full behavioural simulation)."""
    app = _bench_app()
    candidate = sample_candidates(app, samples=1, seed=1)[0]
    oracle = get_oracle("power", BENCH_DURATION_S)
    plan = plan_from_candidate(app, candidate)
    cost, _ = benchmark(oracle.evaluate, app, plan, 8)
    assert cost > 0


def measure() -> dict:
    """Hand-timed throughput comparison; returns the BENCH payload."""
    app = _bench_app()
    candidates = sample_candidates(app, samples=POPULATION, seed=1)
    model = AnalyticModel(app, kind="power",
                          duration_s=BENCH_DURATION_S)
    model.score(candidates[:4])  # warm caches before timing

    start = time.perf_counter()
    for _ in range(REPEATS):
        scores = model.score(candidates)
    analytic_wall = time.perf_counter() - start
    analytic_scored = REPEATS * len(candidates)
    analytic_per_s = analytic_scored / analytic_wall

    oracle = get_oracle("power", BENCH_DURATION_S)
    exact_costs = []
    start = time.perf_counter()
    for candidate in candidates[:EXACT_CALLS]:
        plan = plan_from_candidate(app, candidate)
        cost, _ = oracle.evaluate(app, plan, 8)
        exact_costs.append(cost)
    exact_wall = time.perf_counter() - start
    exact_per_s = EXACT_CALLS / exact_wall

    max_rel_error = max(
        abs(float(scores.cost[index]) - exact) / exact
        for index, exact in enumerate(exact_costs))
    wall = analytic_wall + exact_wall
    points = analytic_scored + EXACT_CALLS
    simulated = points * BENCH_DURATION_S
    return {
        "aggregates": {},
        "schema": BENCH_SCHEMA,
        "name": "oracle",
        "points": points,
        "cache": {"hits": 0, "misses": points},
        "wall_s": wall,
        "executed_wall_s": wall,
        "simulated_s": simulated,
        "sim_s_per_s": simulated / wall if wall > 0 else 0.0,
        "workers": 1,
        "mode": "serial",
        "results": [],
        "population": POPULATION,
        "repeats": REPEATS,
        "exact_calls": EXACT_CALLS,
        "duration_s": BENCH_DURATION_S,
        "analytic_per_s": analytic_per_s,
        "exact_per_s": exact_per_s,
        "speedup": analytic_per_s / exact_per_s,
        "max_rel_error": max_rel_error,
    }


def main(argv=None) -> int:
    """Plain-script mode: time both tiers, emit BENCH_oracle.json."""
    parser = argparse.ArgumentParser(
        description="emit BENCH_oracle.json (analytic vs exact "
                    "scoring throughput)")
    parser.add_argument(
        "--out-dir", default=".",
        help="where to write the artifact (default: cwd)")
    args = parser.parse_args(argv)
    payload = measure()
    path = Path(args.out_dir) / "BENCH_oracle.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(
        f"BENCH_oracle: {payload['analytic_per_s']:,.0f} analytic "
        f"candidates/s vs {payload['exact_per_s']:,.1f} exact "
        f"evaluations/s -> {payload['speedup']:,.0f}x "
        f"(max rel err {payload['max_rel_error']:.1e})")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
