"""EXP-COVER benchmark: coverage-driven fuzz-loop throughput.

Times the fuzz hot path end to end — shape steering, shaped-app
generation, policy screening and bin classification — as whole
applications evaluated per wall-second.  The plain-script mode
replays the ``cover`` campaign (adversarial shaped tokens x mapping
policy) through the sweep subsystem and emits ``BENCH_cover.json``
in the ``repro-bench/1`` schema the CI regression gate tracks.

Run with::

    pytest benchmarks/bench_cover.py --benchmark-only
    python benchmarks/bench_cover.py      # emit BENCH_cover.json
"""

from repro.cover import fuzz_campaign
from repro.cover.model import CoverageMap
from repro.gen.explorer import evaluate_token
from repro.gen.generator import app_from_token

#: Attempt budget of the throughput benchmark: large enough to
#: exercise target re-selection, small enough to finish in seconds.
BENCH_BUDGET = 16

#: Simulated seconds per screened app (matches the campaign default
#: scaled down; the reproduced metrics are duration-invariant).
BENCH_DURATION_S = 0.5

#: Conservative apps-per-second floor for the fuzz loop.  Well below
#: a developer machine (~40+ apps/s) so only a genuine hot-path
#: regression — quadratic target scans, per-attempt pool spin-up —
#: trips it on a slow CI runner.
MIN_APPS_PER_S = 5.0


def test_fuzz_campaign_throughput(benchmark):
    """Time a small fuzz campaign; hold apps/s to a floor."""
    report = benchmark(
        fuzz_campaign,
        budget=BENCH_BUDGET,
        saturation=BENCH_BUDGET,
        duration_s=BENCH_DURATION_S,
    )
    assert len(report.attempts) == BENCH_BUDGET
    assert report.coverage.covered()
    apps_per_s = BENCH_BUDGET / benchmark.stats.stats.mean
    assert apps_per_s >= MIN_APPS_PER_S, apps_per_s


def test_classify_throughput(benchmark):
    """Time bin classification alone (no simulation in the loop)."""
    token = "random-dag:7:0:depth=10+fanin=6+diamond=1+trig=1"
    app = app_from_token(token)
    record = evaluate_token(token, "paper", duration_s=BENCH_DURATION_S)

    def classify_once():
        cover = CoverageMap()
        key, _ = cover.record(app, record, token=token)
        return key

    key = benchmark(classify_once)
    assert key.startswith("random-dag/")


def main(argv=None) -> int:
    """Plain-script mode: replay the campaign, emit BENCH_cover.json."""
    from repro.sweep import bench_main

    return bench_main("cover", argv)


if __name__ == "__main__":
    raise SystemExit(main())
