"""EXP-NET benchmark: fleet throughput, serial vs. parallel.

Measures nodes-per-second of the :class:`repro.net.fleet.FleetRunner`
on the ``drifting-wearables`` scenario and the speedup of the sharded
multiprocessing path over serial execution.  On a machine with 4+
cores the parallel path should clear 2x; the script prints honest
numbers either way (CI containers are often single-core).

The heterogeneous mode times a *generated-app* fleet (every node
binds a `repro.gen` app through a mapping policy — the new hot path
of the pluggable app-source seam) and is gated by the same
``check_regression.py`` baseline as the homogeneous fleets, via the
``fleet-gen`` campaign.

Run with::

    pytest benchmarks/bench_fleet.py --benchmark-only
    python benchmarks/bench_fleet.py      # emit BENCH_fleet.json
                                          # and BENCH_fleet-gen.json
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # plain-script runs
from conftest import BENCH_DURATION_S  # noqa: E402

from repro.net.fleet import run_fleet  # noqa: E402

#: Fleet size of the throughput benchmark.
BENCH_NODES = 64

#: Simulated seconds per node (shorter than the single-node benches:
#: the fleet multiplies per-node work by BENCH_NODES).
FLEET_DURATION_S = min(BENCH_DURATION_S, 10.0)


def _run(workers: int, nodes: int = BENCH_NODES):
    return run_fleet("drifting-wearables", n_nodes=nodes,
                     duration_s=FLEET_DURATION_S, seed=1,
                     workers=workers)


#: Scenario token of the heterogeneous-fleet benchmark: generated
#: suite, load-levelled placement, drifting-wearables surroundings.
GEN_SCENARIO = "gen:drifting-wearables:1:8:balanced"

#: Fleet size of the heterogeneous benchmark (binding resolution is
#: memoised per process, so this mostly times the simulations).
GEN_NODES = 24


def _run_generated(workers: int, nodes: int = GEN_NODES):
    return run_fleet(GEN_SCENARIO, n_nodes=nodes,
                     duration_s=FLEET_DURATION_S, seed=1,
                     workers=workers)


def test_fleet_serial_throughput(benchmark):
    """Time the serial fleet and report nodes/second."""
    result = benchmark(_run, 1)
    assert result.summary.n_nodes == BENCH_NODES
    assert result.nodes_per_second > 0
    print(f"\nserial: {result.nodes_per_second:.1f} nodes/s")


@pytest.mark.parametrize("workers", [2, 4])
def test_fleet_parallel_throughput(benchmark, workers):
    """Time the sharded multiprocessing fleet."""
    result = benchmark(_run, workers)
    assert result.mode == "parallel"
    assert result.summary == _run(1).summary  # determinism while timing
    print(f"\n{workers} workers: {result.nodes_per_second:.1f} nodes/s")


def test_fleet_generated_throughput(benchmark):
    """Time the heterogeneous generated-app fleet (serial)."""
    result = benchmark(_run_generated, 1)
    assert result.summary.n_nodes == GEN_NODES
    assert result.summary.source == "generated-suite"
    assert len(result.summary.families) > 1
    print(f"\ngenerated: {result.nodes_per_second:.1f} nodes/s")


def test_fleet_generated_parallel_matches_serial(benchmark):
    """Time the sharded heterogeneous fleet; pin determinism."""
    result = benchmark(_run_generated, 4)
    assert result.mode == "parallel"
    assert result.summary == _run_generated(1).summary
    print(f"\ngenerated x4: {result.nodes_per_second:.1f} nodes/s")


def main(argv=None) -> int:
    """Plain-script mode: emit BENCH_fleet.json + BENCH_fleet-gen.json."""
    from repro.sweep import bench_main

    return bench_main("fleet", argv) or bench_main("fleet-gen", argv)


if __name__ == "__main__":
    raise SystemExit(main())
