"""EXP-NET benchmark: fleet throughput, serial vs. parallel.

Measures nodes-per-second of the :class:`repro.net.fleet.FleetRunner`
on the ``drifting-wearables`` scenario and the speedup of the sharded
multiprocessing path over serial execution.  On a machine with 4+
cores the parallel path should clear 2x; the script prints honest
numbers either way (CI containers are often single-core).

The heterogeneous mode times a *generated-app* fleet (every node
binds a `repro.gen` app through a mapping policy — the new hot path
of the pluggable app-source seam) and is gated by the same
``check_regression.py`` baseline as the homogeneous fleets, via the
``fleet-gen`` campaign.

The ``--mega`` mode exercises the streaming executor instead: it
runs the same two-tier hierarchy at two sizes (~6k and ~100k nodes)
and records peak RSS after each.  An executor that held per-node
results would grow ~16x between the runs; the bounded one barely
moves, and the regression gate pins both the nodes/second floor and
the RSS ceiling from the emitted payload.

The ``--fast`` mode times the compute fast path: the same
heterogeneous fleet is run once through the exact compute resolver
(byte-identical to inline simulation) and once through the batched
analytic tier, with every process-level memo cleared before each leg
so both pay their true cold cost.  The regression gate holds the
analytic/exact speedup to a hard >= 5x floor.

Run with::

    pytest benchmarks/bench_fleet.py --benchmark-only
    python benchmarks/bench_fleet.py      # emit BENCH_fleet.json
                                          # and BENCH_fleet-gen.json
    python benchmarks/bench_fleet.py --mega   # BENCH_fleet-mega.json
    python benchmarks/bench_fleet.py --fast   # BENCH_fleet-fast.json
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # plain-script runs
from conftest import BENCH_DURATION_S  # noqa: E402

from repro.net import appsource  # noqa: E402
from repro.net.compute import (  # noqa: E402
    COMPUTE_CACHE_ENV,
    clear_process_caches,
)
from repro.net.fleet import run_fleet  # noqa: E402
from repro.net.streaming import run_streaming  # noqa: E402
from repro.sweep import BENCH_SCHEMA  # noqa: E402
from repro.sysc.engine import cached_uniform_schedule  # noqa: E402

#: Fleet size of the throughput benchmark.
BENCH_NODES = 64

#: Simulated seconds per node (shorter than the single-node benches:
#: the fleet multiplies per-node work by BENCH_NODES).
FLEET_DURATION_S = min(BENCH_DURATION_S, 10.0)


def _run(workers: int, nodes: int = BENCH_NODES):
    return run_fleet("drifting-wearables", n_nodes=nodes,
                     duration_s=FLEET_DURATION_S, seed=1,
                     workers=workers)


#: Scenario token of the heterogeneous-fleet benchmark: generated
#: suite, load-levelled placement, drifting-wearables surroundings.
GEN_SCENARIO = "gen:drifting-wearables:1:8:balanced"

#: Fleet size of the heterogeneous benchmark (binding resolution is
#: memoised per process, so this mostly times the simulations).
GEN_NODES = 24


def _run_generated(workers: int, nodes: int = GEN_NODES):
    return run_fleet(GEN_SCENARIO, n_nodes=nodes,
                     duration_s=FLEET_DURATION_S, seed=1,
                     workers=workers)


def test_fleet_serial_throughput(benchmark):
    """Time the serial fleet and report nodes/second."""
    result = benchmark(_run, 1)
    assert result.summary.n_nodes == BENCH_NODES
    assert result.nodes_per_second > 0
    print(f"\nserial: {result.nodes_per_second:.1f} nodes/s")


@pytest.mark.parametrize("workers", [2, 4])
def test_fleet_parallel_throughput(benchmark, workers):
    """Time the sharded multiprocessing fleet."""
    result = benchmark(_run, workers)
    assert result.mode == "parallel"
    assert result.summary == _run(1).summary  # determinism while timing
    print(f"\n{workers} workers: {result.nodes_per_second:.1f} nodes/s")


def test_fleet_generated_throughput(benchmark):
    """Time the heterogeneous generated-app fleet (serial)."""
    result = benchmark(_run_generated, 1)
    assert result.summary.n_nodes == GEN_NODES
    assert result.summary.source == "generated-suite"
    assert len(result.summary.families) > 1
    print(f"\ngenerated: {result.nodes_per_second:.1f} nodes/s")


def test_fleet_generated_parallel_matches_serial(benchmark):
    """Time the sharded heterogeneous fleet; pin determinism."""
    result = benchmark(_run_generated, 4)
    assert result.mode == "parallel"
    assert result.summary == _run_generated(1).summary
    print(f"\ngenerated x4: {result.nodes_per_second:.1f} nodes/s")


#: Hierarchy preset of the mega benchmark (~100k nodes, two tiers).
MEGA_TIERS = "mega-campus"

#: Same shape at 1/16th the subtrees (~6k nodes): the small leg of
#: the bounded-memory comparison.
MEGA_SMALL_TIERS = "tiers:ftsp@10x20~0.5/rbs@2x320:dense-ward"

#: Simulated seconds per node of the mega benchmark (the hierarchy
#: multiplies per-node work by ~100k).
MEGA_DURATION_S = 2.0


def measure_mega() -> dict:
    """Hand-timed streaming mega-fleet; returns the BENCH payload.

    Runs the small hierarchy first, then the ~16x larger one, and
    records the process peak RSS after each.  ``rss_growth_mb`` is
    the high-water delta the big run added: near zero for the
    bounded streaming executor, hundreds of MB for anything holding
    per-node results.  ``nodes_per_s`` is the big run's throughput,
    which the regression gate holds to a floor.
    """
    small = run_streaming(MEGA_SMALL_TIERS,
                          duration_s=MEGA_DURATION_S, seed=1)
    big = run_streaming(MEGA_TIERS, duration_s=MEGA_DURATION_S,
                        seed=1)
    nodes = big.summary.n_nodes + small.summary.n_nodes
    wall = big.elapsed_s + small.elapsed_s
    simulated = nodes * MEGA_DURATION_S
    return {
        "aggregates": {},
        "schema": BENCH_SCHEMA,
        "name": "fleet-mega",
        "points": 2,
        "cache": {"hits": 0, "misses": 2},
        "wall_s": wall,
        "executed_wall_s": wall,
        "simulated_s": simulated,
        "sim_s_per_s": simulated / wall if wall > 0 else 0.0,
        "workers": 1,
        "mode": "streaming",
        "results": [],
        "tiers": big.token,
        "duration_s": MEGA_DURATION_S,
        "wave_size": big.wave_size,
        "n_nodes": big.summary.n_nodes,
        "small_nodes": small.summary.n_nodes,
        "nodes_per_s": big.nodes_per_second,
        "small_nodes_per_s": small.nodes_per_second,
        "peak_rss_mb": big.peak_rss_mb,
        "small_rss_mb": small.peak_rss_mb,
        "rss_growth_mb": big.peak_rss_mb - small.peak_rss_mb,
        "scaling_ratio": (big.nodes_per_second
                          / small.nodes_per_second
                          if small.nodes_per_second > 0 else 0.0),
    }


#: Fleet size of the compute fast-path benchmark.  Large enough that
#: the exact tier pays one full-duration simulation per distinct
#: compute unit while the analytic tier's cost (a fixed handful of
#: short calibration simulations plus vectorised scoring) stays flat.
FAST_NODES = 64


def _clear_compute_memos() -> None:
    """Reset every process-level memo the bench legs could share.

    Both legs must pay their true cold cost: the compute cache, the
    binding resolution memos and the schedule memo all persist per
    process, so a warm second leg would measure dictionary lookups.
    """
    clear_process_caches()
    appsource._resolve_generated.cache_clear()
    appsource._generated_binding.cache_clear()
    appsource._benchmark_binding.cache_clear()
    cached_uniform_schedule.cache_clear()


def measure_fast() -> dict:
    """Hand-timed exact-vs-analytic compute legs; returns the payload.

    Runs the heterogeneous fleet twice — exact resolver first, then
    the batched analytic tier — clearing all process memos before
    each leg and ignoring any on-disk compute cache for the
    duration.  The payload carries the wall-clock speedup (gated
    hard at >= 5x), the analytic leg's nodes/second (tolerance-scaled
    floor) and the calibration block proving the analytic tier was
    admitted against exact simulation.
    """
    env_cache = os.environ.pop(COMPUTE_CACHE_ENV, None)
    try:
        _clear_compute_memos()
        start = time.perf_counter()
        exact = run_fleet(GEN_SCENARIO, n_nodes=FAST_NODES,
                          duration_s=FLEET_DURATION_S, seed=1,
                          compute="exact")
        exact_wall = time.perf_counter() - start
        _clear_compute_memos()
        start = time.perf_counter()
        analytic = run_fleet(GEN_SCENARIO, n_nodes=FAST_NODES,
                             duration_s=FLEET_DURATION_S, seed=1,
                             compute="analytic")
        analytic_wall = time.perf_counter() - start
    finally:
        if env_cache is not None:
            os.environ[COMPUTE_CACHE_ENV] = env_cache
    # The speedup is only meaningful if both legs agree: the sync
    # path is shared verbatim and power must match to calibration
    # accuracy.  A disagreement is a correctness bug, not a slow run.
    if analytic.summary.steady_sync != exact.summary.steady_sync:
        raise RuntimeError("analytic leg changed the sync statistics")
    rel_err = abs(analytic.summary.mean_power_uw
                  - exact.summary.mean_power_uw)
    rel_err /= exact.summary.mean_power_uw
    if rel_err > 1e-6:
        raise RuntimeError(
            f"analytic mean power off by {rel_err:.2e} (> 1e-6)")
    calibration = analytic.compute.calibration
    if calibration is None or not calibration["within"]:
        raise RuntimeError("analytic tier ran without passing "
                           "calibration")
    wall = exact_wall + analytic_wall
    simulated = 2 * FAST_NODES * FLEET_DURATION_S
    return {
        "aggregates": {},
        "schema": BENCH_SCHEMA,
        "name": "fleet-fast",
        "points": 2,
        "cache": {"hits": 0, "misses": 2},
        "wall_s": wall,
        "executed_wall_s": wall,
        "simulated_s": simulated,
        "sim_s_per_s": simulated / wall if wall > 0 else 0.0,
        "workers": 1,
        "mode": "compute",
        "results": [],
        "scenario": GEN_SCENARIO,
        "n_nodes": FAST_NODES,
        "duration_s": FLEET_DURATION_S,
        "exact_wall_s": exact_wall,
        "analytic_wall_s": analytic_wall,
        "exact_nodes_per_s": exact.nodes_per_second,
        "analytic_nodes_per_s": analytic.nodes_per_second,
        "nodes_per_s": analytic.nodes_per_second,
        "speedup": (exact_wall / analytic_wall
                    if analytic_wall > 0 else 0.0),
        "mean_power_rel_err": rel_err,
        "compute": analytic.compute.to_mapping(),
    }


def fast_main(argv=None) -> int:
    """Emit BENCH_fleet-fast.json (exact vs analytic compute legs)."""
    parser = argparse.ArgumentParser(
        description="emit BENCH_fleet-fast.json (wall-clock speedup "
                    "of the batched analytic compute tier over the "
                    "exact resolver)")
    parser.add_argument(
        "--out-dir", default=".",
        help="where to write the artifact (default: cwd)")
    args = parser.parse_args(argv)
    payload = measure_fast()
    path = Path(args.out_dir) / "BENCH_fleet-fast.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(
        f"BENCH_fleet-fast: {payload['n_nodes']} nodes, exact "
        f"{payload['exact_wall_s']:.2f} s vs analytic "
        f"{payload['analytic_wall_s']:.2f} s — speedup "
        f"{payload['speedup']:.1f}x at rel err "
        f"{payload['mean_power_rel_err']:.1e}")
    print(f"wrote {path}")
    return 0


def mega_main(argv=None) -> int:
    """Emit BENCH_fleet-mega.json (throughput + bounded peak RSS)."""
    parser = argparse.ArgumentParser(
        description="emit BENCH_fleet-mega.json (streaming mega-fleet "
                    "throughput and bounded peak RSS)")
    parser.add_argument(
        "--out-dir", default=".",
        help="where to write the artifact (default: cwd)")
    args = parser.parse_args(argv)
    payload = measure_mega()
    path = Path(args.out_dir) / "BENCH_fleet-mega.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(
        f"BENCH_fleet-mega: {payload['n_nodes']:,} nodes at "
        f"{payload['nodes_per_s']:,.0f} nodes/s, peak rss "
        f"{payload['peak_rss_mb']:.0f} MB (+{payload['rss_growth_mb']:.0f}"
        f" MB over the {payload['small_nodes']:,}-node run, "
        f"scaling ratio {payload['scaling_ratio']:.2f})")
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    """Plain-script mode: emit the fleet BENCH artifacts."""
    args = list(sys.argv[1:] if argv is None else argv)
    if "--fast" in args:
        args.remove("--fast")
        return fast_main(args)
    if "--mega" in args:
        args.remove("--mega")
        return mega_main(args)
    from repro.sweep import bench_main

    return bench_main("fleet", args) or bench_main("fleet-gen", args)


if __name__ == "__main__":
    raise SystemExit(main())
