"""EXP-NET benchmark: fleet throughput, serial vs. parallel.

Measures nodes-per-second of the :class:`repro.net.fleet.FleetRunner`
on the ``drifting-wearables`` scenario and the speedup of the sharded
multiprocessing path over serial execution.  On a machine with 4+
cores the parallel path should clear 2x; the script prints honest
numbers either way (CI containers are often single-core).

Run with::

    pytest benchmarks/bench_fleet.py --benchmark-only
    python benchmarks/bench_fleet.py          # plain speedup table
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # plain-script runs
from conftest import BENCH_DURATION_S  # noqa: E402

from repro.net.fleet import run_fleet  # noqa: E402

#: Fleet size of the throughput benchmark.
BENCH_NODES = 64

#: Simulated seconds per node (shorter than the single-node benches:
#: the fleet multiplies per-node work by BENCH_NODES).
FLEET_DURATION_S = min(BENCH_DURATION_S, 10.0)


def _run(workers: int, nodes: int = BENCH_NODES):
    return run_fleet("drifting-wearables", n_nodes=nodes,
                     duration_s=FLEET_DURATION_S, seed=1,
                     workers=workers)


def test_fleet_serial_throughput(benchmark):
    """Time the serial fleet and report nodes/second."""
    result = benchmark(_run, 1)
    assert result.summary.n_nodes == BENCH_NODES
    assert result.nodes_per_second > 0
    print(f"\nserial: {result.nodes_per_second:.1f} nodes/s")


@pytest.mark.parametrize("workers", [2, 4])
def test_fleet_parallel_throughput(benchmark, workers):
    """Time the sharded multiprocessing fleet."""
    result = benchmark(_run, workers)
    assert result.mode == "parallel"
    assert result.summary == _run(1).summary  # determinism while timing
    print(f"\n{workers} workers: {result.nodes_per_second:.1f} nodes/s")


def main() -> int:
    """Plain-script mode: print a serial-vs-parallel speedup table."""
    cpus = os.cpu_count() or 1
    print(f"fleet throughput: {BENCH_NODES} nodes x "
          f"{FLEET_DURATION_S:g} s ECG (drifting-wearables), "
          f"{cpus} CPU(s) available")
    serial = _run(1)
    print(f"  workers  1  {serial.nodes_per_second:8.1f} nodes/s  "
          f"(serial, {serial.elapsed_s:.2f} s)")
    for workers in (2, 4, 8):
        result = _run(workers)
        speedup = (serial.elapsed_s / result.elapsed_s
                   if result.elapsed_s > 0 else 0.0)
        match = "ok" if result.summary == serial.summary else "MISMATCH"
        print(f"  workers {workers:2d}  "
              f"{result.nodes_per_second:8.1f} nodes/s  "
              f"({speedup:.2f}x vs serial, results {match})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
