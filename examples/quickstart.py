"""Quickstart: the paper's synchronization mechanism in five minutes.

Builds the Fig. 4 scenario from scratch: three producer cores condition
three input streams in parallel and hand the results to a consumer
core, synchronized exclusively with the paper's SINC / SDEC / SNOP /
SLEEP instructions.  The program is written in assembly, compiled with
the project tool-chain, and executed on the cycle-level multi-core
platform; afterwards the same application-level scenario is priced with
the power model.

Run with::

    python examples/quickstart.py
"""

from repro.hw import System
from repro.isa import assemble
from repro.power import ActivityVector, OperatingPoint, compute_power

SOURCE = """
; --- Fig. 4: three conditioning producers + one processing consumer ---
.equ SP_DATA, 0           ; synchronization point for the hand-off
.equ SLOTS, 0x900         ; shared slots written by the producers
.equ RESULT, 0x910        ; consumer output
.entry 0, producer
.entry 1, producer
.entry 2, producer
.entry 3, consumer

; The three producers share one code section (and therefore one IM
; bank): in lock-step, their instruction fetches merge into broadcasts.
.section conditioning, bank=0
producer:
    li   r5, 0x7F20        ; REG_CORE_ID
    lw   r6, 0(r5)         ; r6 = my core id
    sinc SP_DATA           ; register as producer (Fig. 3-a)
    ; "conditioning": fold the stream id through a toy filter
    addi r1, r6, 1
    slli r2, r1, 4
    add  r1, r1, r2        ; r1 = 17 * (id + 1)
    li   r4, SLOTS
    add  r4, r4, r6
    sw   r1, 0(r4)         ; publish the conditioned value
    sdec SP_DATA           ; data ready
    halt

.section processing, bank=1
consumer:
    nop                    ; let the producers register first
    snop SP_DATA           ; register interest in the data
    sleep                  ; clock-gate until the counter hits zero
    li   r4, SLOTS         ; woken: all three inputs are ready
    lw   r1, 0(r4)
    lw   r2, 1(r4)
    add  r1, r1, r2
    lw   r2, 2(r4)
    add  r1, r1, r2
    li   r4, RESULT
    sw   r1, 0(r4)
    halt
"""


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Assemble and run on the cycle-level platform.
    # ------------------------------------------------------------------
    image = assemble(SOURCE, name="quickstart.s")
    print(f"assembled {image.code_words} instruction words, "
          f"{image.sync_instruction_count()} of them synchronization "
          f"instructions ({image.code_overhead() * 100:.1f} % overhead)")

    system = System.multicore(num_cores=8)
    system.load(image)
    system.run(10_000)
    assert system.all_halted

    result = system.dm_peek(0x910)
    print(f"consumer computed {result} "
          f"(expected {17 * 1 + 17 * 2 + 17 * 3})")

    stats = system.synchronizer.stats
    activity = system.activity()
    print(f"cycles: {system.cycle}, "
          f"sync events fired: {stats.point_fires}, "
          f"consumer slept: {stats.gate_requests > 0}")
    print(f"instruction broadcast among producers: "
          f"{activity.im_broadcast_fraction * 100:.1f} % of fetches "
          f"served by merged accesses")

    # ------------------------------------------------------------------
    # 2. Price a 60-second deployment with the power model.
    # ------------------------------------------------------------------
    point = OperatingPoint(frequency_mhz=1.0, voltage=0.5)
    cycles = 60 * 1e6
    vector = ActivityVector(
        cycles=cycles, core_active_cycles=3.2 * cycles,
        im_accesses=2.2 * cycles, dm_accesses=0.8 * cycles,
        interconnect_grants=4.0 * cycles, sync_ops=0.02 * cycles,
        cores_on=4, im_banks_on=2, dm_banks_on=16, platform_cores=8)
    report = compute_power(vector, point, multicore=True)
    print(f"\n60 s at 1 MHz / 0.5 V would average "
          f"{report.total_uw:.1f} uW:")
    for name, value in sorted(report.categories.items(),
                              key=lambda item: -item[1]):
        print(f"  {name:<13} {value:6.2f} uW")


if __name__ == "__main__":
    main()
