"""Lock-step recovery across data-dependent branches, measured.

The mechanism of Sec. III-B (after Dogan et al. [8]): replicated cores
executing the same code on different data diverge at data-dependent
branches; wrapping the divergent segment in SINC ... SDEC + SLEEP makes
every participant wait for the slowest one, so they resume *in
lock-step* and their instruction fetches merge into broadcasts again.

This script runs the erosion inner loop (sliding-window minimum, the
paper's first benchmark workload) on the cycle-accurate platform and
measures the broadcast fraction with and without the recovery, plus the
runtime cost of the extra instructions.

Run with::

    python examples/lockstep_branches.py
"""

from repro.kernels import characterize_window_min


def main() -> None:
    print("window-minimum kernel, 3 cores, cycle-accurate platform")
    print(f"{'window':>7} {'mode':>9} {'IM broadcast':>13} "
          f"{'alignment':>10} {'sync cost':>10}")
    for window in (8, 16, 32, 64):
        with_sync = characterize_window_min(cores=3, window=window,
                                            outputs=48, with_sync=True)
        without = characterize_window_min(cores=3, window=window,
                                          outputs=48, with_sync=False)
        assert with_sync.results == without.results, "functional mismatch"
        print(f"{window:>7} {'SINC/SDEC':>9} "
              f"{with_sync.im_broadcast_fraction * 100:>12.1f}% "
              f"{with_sync.alignment:>10.2f} "
              f"{with_sync.sync_runtime_overhead * 100:>9.2f}%")
        print(f"{'':>7} {'none':>9} "
              f"{without.im_broadcast_fraction * 100:>12.1f}% "
              f"{without.alignment:>10.2f} {'-':>10}")
    print("\nWider windows amortise the synchronization instructions:")
    print("at filter-sized windows the runtime cost approaches the")
    print("paper's 1.65 % while the broadcast fraction stays high.")


if __name__ == "__main__":
    main()
