"""Fleet time-sync demo: drifting wearables, three protocols.

Simulates the ``drifting-wearables`` scenario — battery-powered ECG
wearables with cheap, fast-drifting crystals — twice with the same
fleet seed (so the *same* clocks and radios), changing only the
inter-node sync protocol:

* ``rbs``  — offset jump to each periodic reference broadcast,
* ``ftsp`` — FTSP-style offset + skew regression over beacon history.

The free-running ``none`` baseline costs nothing extra: every fleet
run records the raw-local-clock error alongside its protocol in the
same replay.

The steady-state residual error table shows why skew estimation
matters once beacons are sparse, and the power column shows what the
radio traffic costs next to the node's cores and memories.

Run with::

    PYTHONPATH=src python examples/fleet_timesync.py
"""

from repro.net import run_fleet

SCENARIO = "drifting-wearables"
NODES = 24
DURATION_S = 20.0
SEED = 2014


def main() -> None:
    results = {
        protocol: run_fleet(SCENARIO, n_nodes=NODES,
                            duration_s=DURATION_S, seed=SEED,
                            protocol=protocol)
        for protocol in ("rbs", "ftsp")
    }
    # Both runs record the same free-running counterfactual; read the
    # "none" row from either.
    summaries = {"none": results["rbs"].summary,
                 "rbs": results["rbs"].summary,
                 "ftsp": results["ftsp"].summary}
    base = summaries["none"].steady_unsync

    print(f"{SCENARIO}: {NODES} nodes, {DURATION_S:g} s of ECG each, "
          f"{summaries['none'].beacons_sent} sync beacons")
    print(f"{'protocol':<10}{'steady err mean':>17}"
          f"{'steady err max':>16}{'improvement':>13}"
          f"{'node power':>12}{'radio':>8}")
    for protocol, summary in summaries.items():
        steady = (base if protocol == "none" else summary.steady_sync)
        improvement = (base.mean_abs_s / steady.mean_abs_s
                       if steady.mean_abs_s > 0 else float("inf"))
        print(f"{protocol:<10}"
              f"{steady.mean_abs_s * 1e3:>14.3f} ms"
              f"{steady.max_abs_s * 1e3:>13.3f} ms"
              f"{improvement:>11.1f} x"
              f"{summary.mean_power_uw:>9.1f} uW"
              f"{summary.mean_radio_uw:>5.1f} uW")

    ftsp = summaries["ftsp"]
    gain = base.mean_abs_s / ftsp.steady_sync.mean_abs_s
    print(f"\nunsynchronized wearables drift "
          f"{base.mean_abs_s * 1e3:.1f} ms apart; "
          f"ftsp holds them to "
          f"{ftsp.steady_sync.mean_abs_s * 1e3:.3f} ms "
          f"({gain:.0f}x tighter) for "
          f"{ftsp.mean_radio_uw:.1f} uW of radio per node.")
    assert gain >= 10.0, "sync should beat free-running drift by >= 10x"


if __name__ == "__main__":
    main()
