"""3L-MMD end to end: signals -> DSP -> mapping -> power.

Reproduces the paper's most complete streaming benchmark: three ECG
leads are conditioned in parallel, aggregated, and delineated with
multi-scale morphological derivatives.  The script shows all three
layers of the reproduction working together:

1. the *functional* pipeline (real DSP over a synthetic CSE-like
   record) produces fiducial points for every heartbeat;
2. the *mapping* step places the application on 5 cores / 4 IM banks
   exactly as Table I reports;
3. the *system-level* simulation prices the single-core baseline
   against the synchronized multi-core system.

Run with::

    python examples/ecg_multicore_pipeline.py
"""

from repro.apps import map_multicore, run_three_lead_mmd, three_lead_mmd
from repro.signals import cse_like_record
from repro.sysc import Mode, simulate, uniform_schedule


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Functional pipeline on 30 s of synthetic 3-lead ECG.
    # ------------------------------------------------------------------
    record = cse_like_record(duration_s=30.0, num_leads=3)
    output = run_three_lead_mmd(record)
    print(f"record: {record.duration_s:.0f} s, {record.num_leads} leads, "
          f"{len(record.annotations)} annotated beats")
    print(f"delineated {len(output.beats)} beats; first three:")
    for beat in output.beats[:3]:
        onset_ms = (beat.r_peak - beat.qrs_onset) / record.fs * 1000
        offset_ms = (beat.qrs_offset - beat.r_peak) / record.fs * 1000
        print(f"  R @ {beat.r_peak / record.fs:6.2f} s  "
              f"QRS -{onset_ms:.0f}/+{offset_ms:.0f} ms  "
              f"P {'yes' if beat.p_peak is not None else 'no ':<3} "
              f"T {'yes' if beat.t_peak is not None else 'no'}")

    # ------------------------------------------------------------------
    # 2. Mapping (Sec. III-B step 3).
    # ------------------------------------------------------------------
    app = three_lead_mmd()
    plan = map_multicore(app)
    print(f"\nmapping: {plan.active_cores} cores, IM banks "
          f"{sorted(plan.im_banks_used)}, "
          f"{plan.sync_points_used} sync points, "
          f"code overhead {plan.code_overhead * 100:.2f} %")
    for assignment in plan.assignments:
        print(f"  core {assignment.core}: {assignment.phase}"
              f"[{assignment.replica}]")

    # ------------------------------------------------------------------
    # 3. Single-core vs. multi-core power (Table I column).
    # ------------------------------------------------------------------
    schedule = uniform_schedule(60.0, app.fs)
    single = simulate(app, Mode.SINGLE_CORE, schedule)
    multi = simulate(app, Mode.MULTI_CORE, schedule)
    print(f"\nsingle-core: {single.operating_point.frequency_mhz:.1f} MHz"
          f" @ {single.operating_point.voltage:.2f} V -> "
          f"{single.power.total_uw:.1f} uW")
    print(f"multi-core:  {multi.operating_point.frequency_mhz:.1f} MHz"
          f" @ {multi.operating_point.voltage:.2f} V -> "
          f"{multi.power.total_uw:.1f} uW "
          f"(IM broadcast {multi.im_broadcast_fraction * 100:.1f} %)")
    print(f"saving: {multi.power.saving_vs(single.power) * 100:.1f} % "
          f"(paper: 36.9 %)")


if __name__ == "__main__":
    main()
