"""Multi-round producer-consumer pipelines from the paper's ISE alone.

The paper's primitives are one-shot by design (a counter returning to
zero fires once).  This example shows how *reusable* rendezvous are
still expressible with nothing but SINC / SDEC / SLEEP: two sync
points used in alternation, where each core pre-registers on the next
epoch before waiting on the current one (a sense-reversing barrier).

Both levels of the reproduction run the same protocol:

1. behavioural level — :class:`repro.core.SenseBarrier` over the
   synchronizer model;
2. machine level — the ``barrier_pipeline_kernel`` assembly program on
   the cycle-accurate platform, with three producers feeding a
   consumer for several rounds.

Run with::

    python examples/producer_consumer_rounds.py
"""

from repro.core import SenseBarrier, SyncDomain
from repro.kernels import characterize_barrier_pipeline


def behavioural_demo() -> None:
    """Drive the synchronizer model through three barrier epochs."""
    domain = SyncDomain(num_cores=4)
    barrier = SenseBarrier(domain, point_even=0, point_odd=1,
                           parties=[0, 1, 2, 3])
    barrier.prime()
    print("behavioural sense barrier, 4 cores, 3 epochs:")
    for epoch in range(3):
        slept = [barrier.arrive(core) for core in (0, 1, 2)]
        last = barrier.arrive(3)
        print(f"  epoch {epoch}: cores 0-2 gated={slept}, "
              f"last arrival gated={last} (latch fall-through)")
        assert barrier.everyone_released()


def machine_demo() -> None:
    """Run the assembly pipeline on the cycle-accurate platform."""
    report = characterize_barrier_pipeline(producers=3, rounds=8)
    print("\nassembly producer-consumer pipeline (cycle-accurate):")
    print(f"  3 producers x 8 rounds in {report.cycles} cycles")
    print(f"  consumer checksum {report.consumer_sum} "
          f"(expected {report.expected_sum})")
    print(f"  {report.point_fires} synchronization events "
          f"(2 barriers/round), {report.sleeps} SLEEPs executed")


def main() -> None:
    behavioural_demo()
    machine_demo()


if __name__ == "__main__":
    main()
