"""RP-CLASS: train, classify, and sweep the pathological ratio (Fig. 7).

The third benchmark end to end: a random-projection classifier is
trained on one synthetic patient, then deployed on unseen recordings;
each beat it flags as abnormal triggers the three-lead delineation
chain.  Finally the Fig. 7 experiment sweeps the fraction of
pathological beats and reports the multi-core power reduction at each
point.

Run with::

    python examples/rp_class_sweep.py
"""

from repro.apps import run_rp_class
from repro.dsp import MorphologicalFilter, RandomProjectionClassifier
from repro.eval import render_fig7, run_fig7
from repro.signals import BeatLabel, EcgConfig, rp_class_record, \
    synthesize_ecg

FS = 250.0


def train_classifier() -> RandomProjectionClassifier:
    """Fit the classifier on a labelled synthetic training record."""
    train = synthesize_ecg(EcgConfig(
        duration_s=90.0, num_leads=1, pathological_ratio=0.3,
        seed=101, uniform_pathology=False))
    lead = MorphologicalFilter(fs=FS).process(train.leads[0])
    classifier = RandomProjectionClassifier(FS)
    stored = classifier.fit(
        lead,
        [beat.sample for beat in train.annotations],
        [beat.label for beat in train.annotations])
    print(f"trained on {len(train.annotations)} beats -> "
          f"{stored} projected prototypes "
          f"({classifier.dm_words()} DM words)")
    return classifier


def main() -> None:
    classifier = train_classifier()

    # ------------------------------------------------------------------
    # Deploy on an unseen record with 20 % pathological beats.
    # ------------------------------------------------------------------
    record = rp_class_record(duration_s=60.0, pathological_ratio=0.20,
                             seed=202)
    output = run_rp_class(record, classifier)
    flagged = sum(1 for label in output.labels
                  if label is BeatLabel.PVC)
    truth = sum(1 for beat in record.annotations
                if beat.is_pathological)
    print(f"\ndeployment: {len(output.detected_peaks)} beats detected, "
          f"{flagged} flagged abnormal (ground truth: {truth})")
    print(f"on-demand chain delineated {len(output.delineated)} beats")

    # ------------------------------------------------------------------
    # Figure 7: power vs. pathological ratio.
    # ------------------------------------------------------------------
    print()
    print(render_fig7(run_fig7(duration_s=30.0)))


if __name__ == "__main__":
    main()
