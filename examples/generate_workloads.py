"""Synthetic workloads: stress the mapping methodology beyond Table I.

The paper validates its synchronization approach on three fixed ECG
applications; ``repro.gen`` widens that to a seeded population of
task graphs.  This example generates a small suite across all five
topology families, prints each app's shape, and then compares three
mapping policies — the paper's dedicated-bank placement, load-levelled
packing, and critical-path-first — on every app, showing where the
paper's policy rejects a workload the heuristics can still place.

Run with::

    python examples/generate_workloads.py
"""

from repro.gen import (
    app_fingerprint,
    explore,
    generate_app,
    parse_app_token,
    suite_tokens,
)

SEED = 42
COUNT = 10
POLICIES = ("paper", "balanced", "critical-path")


def main() -> None:
    tokens = suite_tokens(SEED, COUNT)

    print(f"== generated suite (seed {SEED}) ==")
    for token in tokens:
        family, seed, index, _ = parse_app_token(token)
        app = generate_app(family, seed, index)
        replicas = sum(phase.replicas for phase in app.phases)
        print(f"  {app.name:<18} {len(app.phases)} phase(s), "
              f"{replicas} replica(s), "
              f"{len(app.channels)} channel(s), "
              f"{app.streaming_cycles_per_sample:7.0f} cycles/sample  "
              f"[{app_fingerprint(app)}]")

    print(f"\n== mapping-policy exploration ({', '.join(POLICIES)}) ==")
    records = explore(tokens, policies=POLICIES, duration_s=2.0)
    for record in records:
        if record.status == "rejected":
            print(f"  {record.app:<18} {record.policy:<14} REJECTED "
                  f"({record.error})")
        else:
            note = f" (trimmed {record.repairs} replica(s))" \
                if record.repairs else ""
            print(f"  {record.app:<18} {record.policy:<14} "
                  f"{record.clock_mhz:5.2f} MHz/{record.voltage:.2f} V  "
                  f"{record.power_uw:6.1f} uW  "
                  f"duty {record.duty_cycle:4.2f}  "
                  f"sync {record.sync_overhead * 100:4.2f} %{note}")

    placed = sum(1 for r in records if r.status != "rejected")
    print(f"\n{placed}/{len(records)} (app, policy) points placed; "
          f"identical seeds regenerate identical apps on any machine.")


if __name__ == "__main__":
    main()
